//===- tests/support/HwCountersTest.cpp - perf_event counter tests ------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The hardware-counter layer must work in two worlds: on bare metal where
// perf_event_open succeeds, and in containers where it is denied (seccomp
// EPERM/ENOSYS or perf_event_paranoid EACCES). These tests assert the
// contract that holds in both: sampling never throws, never blocks, and
// degrades to invalid (ignored) samples rather than garbage — whichever
// world the test host happens to be.
//
//===----------------------------------------------------------------------===//

#include "support/HwCounters.h"
#include "support/Profiler.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

using namespace oppsla;
using namespace oppsla::telemetry;

namespace {

/// Enables the subsystem for one test body and restores the previous
/// state afterwards (other tests expect the default-off gate).
class EnabledGuard {
public:
  EnabledGuard() : Was(hwCountersEnabled()) { setHwCountersEnabled(true); }
  ~EnabledGuard() { setHwCountersEnabled(Was); }

private:
  bool Was;
};

/// Burns a few hundred thousand instructions so a working counter group
/// has something to count.
uint64_t spin() {
  volatile uint64_t Acc = 1;
  for (int I = 0; I != 200000; ++I)
    Acc = Acc * 33 + 7;
  return Acc;
}

} // namespace

TEST(HwCounters, SlotNamesAreStable) {
  EXPECT_STREQ(hwCounterName(HwInstructions), "instructions");
  EXPECT_STREQ(hwCounterName(HwCycles), "cycles");
  EXPECT_STREQ(hwCounterName(HwCacheRefs), "cache_refs");
  EXPECT_STREQ(hwCounterName(HwCacheMisses), "cache_misses");
  EXPECT_STREQ(hwCounterName(HwBranchMisses), "branch_misses");
  EXPECT_STREQ(hwCounterName(HwNumCounters), "");
}

TEST(HwCounters, DisabledMeansInvalidSamples) {
  setHwCountersEnabled(false);
  EXPECT_FALSE(hwCountersEnabled());
  const HwSample S = hwSample();
  EXPECT_FALSE(S.Valid) << "sampling while disabled must be a no-op";
}

TEST(HwCounters, EnabledSamplingNeverThrowsWhereverItRuns) {
  EnabledGuard G;
  EXPECT_TRUE(hwCountersEnabled());

  const bool Available = hwCountersAvailable();
  const HwSample A = hwSample();
  spin();
  const HwSample B = hwSample();

  if (!Available) {
    // The containerized world: the probe latched unavailable and every
    // sample is invalid, forever, with no crash and no syscall storm.
    EXPECT_FALSE(A.Valid);
    EXPECT_FALSE(B.Valid);
    EXPECT_FALSE(hwCountersAvailable()) << "unavailability must latch";
  } else if (A.Valid && B.Valid) {
    // The bare-metal world: cumulative counters move forward.
    EXPECT_GE(B.Values[HwInstructions], A.Values[HwInstructions]);
    EXPECT_GE(B.Values[HwCycles], A.Values[HwCycles]);
  }
}

TEST(HwCounters, ScopeAccumulatesOrLeavesUntouched) {
  EnabledGuard G;
  uint64_t Accum[HwNumCounters];
  std::memset(Accum, 0, sizeof(Accum));
  {
    HwCountersScope Scope(Accum);
    spin();
  }
  if (!hwCountersAvailable()) {
    for (size_t I = 0; I != HwNumCounters; ++I)
      EXPECT_EQ(Accum[I], 0u) << hwCounterName(I)
                              << " must stay untouched without perf";
  } else if (Accum[HwInstructions] != 0) {
    // 200k multiply-add iterations cannot execute in fewer than 200k
    // instructions.
    EXPECT_GT(Accum[HwInstructions], 200000u);
  }
}

TEST(HwCounters, NullAccumulatorIsSafe) {
  EnabledGuard G;
  HwCountersScope Scope(nullptr);
  spin();
  // Destructor must not dereference the null accumulator.
}

TEST(HwCounters, PerThreadGroupsDoNotInterfere) {
  EnabledGuard G;
  // Each thread opens (or fails to open) its own group lazily; racing
  // first-use from many threads must neither crash nor deadlock.
  std::vector<std::thread> Threads;
  for (int T = 0; T != 8; ++T)
    Threads.emplace_back([] {
      for (int I = 0; I != 50; ++I) {
        const HwSample S = hwSample();
        (void)S;
        spin();
      }
    });
  for (std::thread &T : Threads)
    T.join();
}

TEST(HwCounters, DeltaSummaryFormats) {
  uint64_t Delta[HwNumCounters] = {0, 0, 0, 0, 0};
  EXPECT_TRUE(hwDeltaSummary(Delta).empty())
      << "zero instructions means nothing to report";

  Delta[HwInstructions] = 2000000;
  Delta[HwCycles] = 1000000;
  Delta[HwCacheRefs] = 100000;
  Delta[HwCacheMisses] = 5000;
  Delta[HwBranchMisses] = 4000;
  const std::string S = hwDeltaSummary(Delta);
  EXPECT_NE(S.find("ipc=2.00"), std::string::npos) << S;
  EXPECT_NE(S.find("cache-miss=5.0%"), std::string::npos) << S;
  EXPECT_NE(S.find("branch-miss/ki=2.00"), std::string::npos) << S;
}

TEST(HwCounters, ProfileScopeCarriesHwWithoutChangingShape) {
  // A profiled region with --hw-counters on: the profile tree must be
  // structurally identical to the counters-off world; hw data appears
  // only in the per-entry Hw fields (and only where sampling worked).
  resetProfiler();
  setProfilingEnabled(true);
  {
    EnabledGuard G;
    ProfileScope Outer("hwtest.outer");
    ProfileScope Inner("hwtest.inner");
    spin();
  }
  const std::vector<ProfileEntry> Entries = profileSnapshot();
  setProfilingEnabled(false);
  resetProfiler();

  ASSERT_EQ(Entries.size(), 2u);
  for (const ProfileEntry &E : Entries) {
    if (E.HwCount == 0) {
      for (size_t I = 0; I != HwNumCounters; ++I)
        EXPECT_EQ(E.Hw[I], 0u);
    } else {
      EXPECT_TRUE(hwCountersAvailable());
    }
  }
}
