//===- tests/support/StatsServerTest.cpp - Embedded HTTP server tests ---------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Drives the embedded stats server over a real loopback socket: binds an
// ephemeral port, issues raw HTTP/1.1 GETs, and validates the /metrics,
// /healthz and /profile payloads — including a scrape taken mid-sweep
// while a worker thread is publishing progress.
//
//===----------------------------------------------------------------------===//

#include "support/Ledger.h"
#include "support/Metrics.h"
#include "support/Profiler.h"
#include "support/Progress.h"
#include "support/StatsServer.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace oppsla;

namespace {

/// Minimal HTTP client: one GET, reads to EOF (the server sends
/// `Connection: close`), returns the raw response.
std::string httpGet(uint16_t Port, const std::string &Target) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return "";
  }
  const std::string Req =
      "GET " + Target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t Sent = 0;
  while (Sent < Req.size()) {
    const ssize_t N = ::send(Fd, Req.data() + Sent, Req.size() - Sent, 0);
    if (N <= 0) {
      ::close(Fd);
      return "";
    }
    Sent += static_cast<size_t>(N);
  }
  std::string Out;
  char Buf[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Out.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  return Out;
}

/// Same GET, but trickled one byte per send() with a pause mid-header —
/// the request line alone is NOT a complete request, so a server that
/// parses after a single recv() fails this.
std::string httpGetSplit(uint16_t Port, const std::string &Target) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return "";
  }
  const std::string Req =
      "GET " + Target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  for (size_t I = 0; I != Req.size(); ++I) {
    if (::send(Fd, Req.data() + I, 1, 0) != 1) {
      ::close(Fd);
      return "";
    }
    if (I == Req.find('\n'))
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::string Out;
  char Buf[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Out.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  return Out;
}

std::string bodyOf(const std::string &Response) {
  const size_t Pos = Response.find("\r\n\r\n");
  return Pos == std::string::npos ? "" : Response.substr(Pos + 4);
}

} // namespace

TEST(StatsServer, BindsEphemeralPortAndStops) {
  telemetry::StatsServer S;
  ASSERT_TRUE(S.start(0));
  EXPECT_TRUE(S.running());
  EXPECT_NE(S.port(), 0);
  EXPECT_FALSE(S.start(0)) << "second start on a running server must fail";
  S.stop();
  EXPECT_FALSE(S.running());
  S.stop(); // idempotent
}

TEST(StatsServer, ServesPrometheusMetrics) {
  telemetry::counter("statstest.pings").inc(3);
  telemetry::StatsServer S;
  ASSERT_TRUE(S.start(0));
  const std::string Resp = httpGet(S.port(), "/metrics");
  S.stop();

  EXPECT_NE(Resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(Resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(Resp.find("Content-Length:"), std::string::npos);
  const std::string Body = bodyOf(Resp);
  EXPECT_NE(Body.find("# TYPE oppsla_statstest_pings_total counter"),
            std::string::npos);
  EXPECT_NE(Body.find("oppsla_statstest_pings_total 3"), std::string::npos);
}

TEST(StatsServer, ServesHealthzJson) {
  telemetry::progressBegin("statstest", 10);
  telemetry::progressItem(true, true, 4);
  telemetry::progressItem(true, false, 8);
  telemetry::StatsServer S;
  ASSERT_TRUE(S.start(0));
  const std::string Resp = httpGet(S.port(), "/healthz");
  S.stop();
  telemetry::progressFinish();

  EXPECT_NE(Resp.find("application/json"), std::string::npos);
  const std::string Body = bodyOf(Resp);
  EXPECT_NE(Body.find("\"status\":\"ok\""), std::string::npos) << Body;
  EXPECT_NE(Body.find("\"mode\":\"statstest\""), std::string::npos) << Body;
  EXPECT_NE(Body.find("\"done\":2"), std::string::npos) << Body;
  EXPECT_NE(Body.find("\"total\":10"), std::string::npos) << Body;
  EXPECT_NE(Body.find("\"success_rate\":0.5"), std::string::npos) << Body;
  EXPECT_NE(Body.find("\"avg_queries\":6"), std::string::npos) << Body;
}

TEST(StatsServer, ServesProfileFoldedStacks) {
  telemetry::resetProfiler();
  telemetry::setProfilingEnabled(true);
  {
    telemetry::ProfileScope Outer("statstest.outer");
    telemetry::ProfileScope Inner("statstest.inner");
    // Zero-self-time paths are dropped from the folded rendering; give
    // the leaf a measurable duration.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  telemetry::StatsServer S;
  ASSERT_TRUE(S.start(0));
  const std::string Body = bodyOf(httpGet(S.port(), "/profile"));
  S.stop();
  telemetry::setProfilingEnabled(false);
  telemetry::resetProfiler();

  EXPECT_NE(Body.find("statstest.outer;statstest.inner "),
            std::string::npos)
      << Body;
}

TEST(StatsServer, RequestSplitAcrossPacketsStillParses) {
  // The shared http::readRequest() loops on recv() until the header
  // terminator; a request trickling in one byte at a time — with the
  // request line and the rest of the header in different packets — must
  // still be answered, not 400'd from a partial read.
  telemetry::counter("statstest.split").inc();
  telemetry::StatsServer S;
  ASSERT_TRUE(S.start(0));
  const std::string Resp = httpGetSplit(S.port(), "/metrics");
  S.stop();
  EXPECT_NE(Resp.find("HTTP/1.1 200 OK"), std::string::npos) << Resp;
  EXPECT_NE(bodyOf(Resp).find("oppsla_statstest_split_total"),
            std::string::npos);
}

TEST(StatsServer, UnknownPathIs404) {
  telemetry::StatsServer S;
  ASSERT_TRUE(S.start(0));
  const std::string Resp = httpGet(S.port(), "/no-such-endpoint");
  S.stop();
  EXPECT_NE(Resp.find("HTTP/1.1 404"), std::string::npos);
}

TEST(StatsServer, QuitEndpointReleasesWait) {
  telemetry::StatsServer S;
  ASSERT_TRUE(S.start(0));
  EXPECT_FALSE(S.quitRequested());
  EXPECT_FALSE(S.waitQuit(0.05)) << "no quit yet: the wait must time out";
  httpGet(S.port(), "/quitquitquit");
  EXPECT_TRUE(S.waitQuit(5.0));
  EXPECT_TRUE(S.quitRequested());
  S.stop();
}

TEST(StatsServer, ServesLedgerEndpoint) {
  // With no ledger registered the endpoint still answers with a valid,
  // empty document plus the hw-counter availability block.
  ledger::setServedPath("");
  telemetry::StatsServer S;
  ASSERT_TRUE(S.start(0));
  std::string Body = bodyOf(httpGet(S.port(), "/ledger"));
  EXPECT_NE(Body.find("\"rows\":0"), std::string::npos) << Body;
  EXPECT_NE(Body.find("\"hw_counters\""), std::string::npos) << Body;

  // Register a real ledger file and scrape again: the tail must appear.
  const std::string Path = ::testing::TempDir() + "/statsserver_ledger.jsonl";
  std::remove(Path.c_str());
  LedgerEntry E;
  E.Bench = "statstest_bench";
  E.Scale = "smoke";
  E.Metrics["m"] = 1.5;
  std::string Error;
  ASSERT_TRUE(ledger::append(Path, E, Error)) << Error;
  ledger::setServedPath(Path);
  Body = bodyOf(httpGet(S.port(), "/ledger"));
  S.stop();
  ledger::setServedPath("");
  std::remove(Path.c_str());

  EXPECT_NE(Body.find("\"rows\":1"), std::string::npos) << Body;
  EXPECT_NE(Body.find("statstest_bench"), std::string::npos) << Body;
}

TEST(StatsServer, ConcurrentScrapersDuringSweep) {
  // The hardening contract for the single accept loop: eight scraper
  // threads hammering all three live endpoints while a worker publishes
  // progress must all get complete, well-formed responses — no torn
  // payloads, no wedged server, no crash.
  ledger::setServedPath("");
  telemetry::StatsServer S;
  ASSERT_TRUE(S.start(0));

  std::atomic<bool> Stop{false};
  telemetry::progressBegin("statstest-concurrent", 100000);
  std::thread Worker([&Stop] {
    while (!Stop.load())
      telemetry::progressItem(true, true, 3);
  });

  constexpr int NumScrapers = 8;
  constexpr int GetsPerScraper = 25;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Scrapers;
  for (int T = 0; T != NumScrapers; ++T)
    Scrapers.emplace_back([&, T] {
      const char *Targets[] = {"/metrics", "/healthz", "/ledger"};
      for (int I = 0; I != GetsPerScraper; ++I) {
        const std::string Target = Targets[(T + I) % 3];
        const std::string Resp = httpGet(S.port(), Target);
        if (Resp.find("HTTP/1.1 200 OK") == std::string::npos) {
          ++Failures;
          continue;
        }
        const std::string Body = bodyOf(Resp);
        bool Ok = true;
        if (Target == std::string("/metrics"))
          Ok = Body.find("# TYPE") != std::string::npos;
        else if (Target == std::string("/healthz"))
          Ok = Body.find("\"status\":\"ok\"") != std::string::npos;
        else
          Ok = Body.find("\"ledger\"") != std::string::npos;
        if (!Ok)
          ++Failures;
      }
    });
  for (std::thread &T : Scrapers)
    T.join();
  Stop.store(true);
  Worker.join();
  telemetry::progressFinish();

  // The server must still be alive and answering after the storm.
  const std::string After = httpGet(S.port(), "/healthz");
  S.stop();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_NE(After.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST(StatsServer, ScrapesMidSweep) {
  telemetry::StatsServer S;
  ASSERT_TRUE(S.start(0));

  // A worker publishing progress while the main thread scrapes — the
  // /healthz snapshot must always be internally consistent JSON.
  std::atomic<bool> Stop{false};
  telemetry::progressBegin("statstest-sweep", 1000);
  std::thread Worker([&Stop] {
    while (!Stop.load())
      telemetry::progressItem(true, true, 2);
  });

  bool SawProgress = false;
  for (int I = 0; I != 20; ++I) {
    const std::string Body = bodyOf(httpGet(S.port(), "/healthz"));
    ASSERT_NE(Body.find("\"status\":\"ok\""), std::string::npos) << Body;
    ASSERT_NE(Body.find("\"mode\":\"statstest-sweep\""), std::string::npos);
    if (Body.find("\"done\":0,") == std::string::npos)
      SawProgress = true;
  }
  Stop.store(true);
  Worker.join();
  telemetry::progressFinish();
  S.stop();
  EXPECT_TRUE(SawProgress) << "the worker made progress during scraping";
}
