//===- tests/support/TelemetryTest.cpp - Metrics + trace tests ----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/Trace.h"

#include "../JsonTestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

using namespace oppsla;
using namespace oppsla::test;

namespace {

std::string tempPath(const char *Name) {
  return (std::filesystem::temp_directory_path() / Name).string();
}

std::vector<std::string> readLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  return Lines;
}

/// Closes the process-wide trace sink on scope exit so a failing test
/// cannot leave tracing enabled for the rest of the suite.
struct TraceGuard {
  ~TraceGuard() { telemetry::TraceWriter::instance().close(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketBoundariesAreInclusive) {
  telemetry::Histogram H({1.0, 2.0, 4.0});
  ASSERT_EQ(H.numBuckets(), 4u) << "three bounds plus overflow";
  // Bucket i counts X <= UpperBounds[i]; observations on the boundary
  // belong to the bucket whose bound they equal.
  H.observe(0.5); // bucket 0
  H.observe(1.0); // bucket 0 (X <= 1)
  H.observe(1.5); // bucket 1
  H.observe(2.0); // bucket 1 (X <= 2)
  H.observe(4.0); // bucket 2
  H.observe(5.0); // overflow
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 2u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 1u);
  EXPECT_EQ(H.count(), 6u);
  EXPECT_NEAR(H.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 5.0, 1e-12);
  EXPECT_NEAR(H.mean(), H.sum() / 6.0, 1e-12);
}

TEST(Histogram, EmptyMeanIsZero) {
  telemetry::Histogram H({1.0});
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.mean(), 0.0);
}

TEST(Histogram, ExponentialBuckets) {
  const std::vector<double> B = telemetry::exponentialBuckets(1.0, 2.0, 5);
  ASSERT_EQ(B.size(), 5u);
  EXPECT_DOUBLE_EQ(B[0], 1.0);
  EXPECT_DOUBLE_EQ(B[1], 2.0);
  EXPECT_DOUBLE_EQ(B[2], 4.0);
  EXPECT_DOUBLE_EQ(B[3], 8.0);
  EXPECT_DOUBLE_EQ(B[4], 16.0);
  for (size_t I = 1; I != B.size(); ++I)
    EXPECT_GT(B[I], B[I - 1]) << "bounds must be strictly increasing";
}

TEST(Histogram, ConcurrentObserveLosesNoSamples) {
  telemetry::Histogram H(telemetry::exponentialBuckets(1.0, 2.0, 10));
  constexpr int NumThreads = 4;
  constexpr int PerThread = 5000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&H] {
      for (int I = 0; I != PerThread; ++I)
        H.observe(static_cast<double>(I % 100));
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(H.count(), static_cast<uint64_t>(NumThreads * PerThread));
  uint64_t BucketTotal = 0;
  for (size_t I = 0; I != H.numBuckets(); ++I)
    BucketTotal += H.bucketCount(I);
  EXPECT_EQ(BucketTotal, H.count()) << "every sample lands in some bucket";
  // Sum of 0..99 per thread pass, 50 passes each: exact in double.
  EXPECT_NEAR(H.sum(), NumThreads * 50.0 * 4950.0, 1e-6);
}

//===----------------------------------------------------------------------===//
// Counter / Gauge / registry
//===----------------------------------------------------------------------===//

TEST(Counter, AtomicUnderContention) {
  telemetry::Counter C;
  constexpr int NumThreads = 8;
  constexpr int PerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&C] {
      for (int I = 0; I != PerThread; ++I)
        C.inc();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(NumThreads * PerThread))
      << "no increment may be lost";
}

TEST(MetricsRegistry, SameNameSameInstrument) {
  telemetry::Counter &A = telemetry::counter("test.registry.counter");
  telemetry::Counter &B = telemetry::counter("test.registry.counter");
  EXPECT_EQ(&A, &B);
  A.inc(3);
  EXPECT_EQ(B.value(), 3u);

  telemetry::Histogram &H1 =
      telemetry::histogram("test.registry.hist", {1.0, 2.0});
  telemetry::Histogram &H2 =
      telemetry::histogram("test.registry.hist", {5.0, 6.0, 7.0});
  EXPECT_EQ(&H1, &H2) << "first registration's bounds win";
  EXPECT_EQ(H2.upperBounds().size(), 2u);

  telemetry::gauge("test.registry.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(telemetry::gauge("test.registry.gauge").value(), 2.5);
}

TEST(MetricsRegistry, SnapshotJsonIsValid) {
  telemetry::counter("test.snapshot.counter").inc(7);
  telemetry::gauge("test.snapshot.gauge").set(1.25);
  telemetry::Histogram &H =
      telemetry::histogram("test.snapshot.hist", {1.0, 10.0});
  H.observe(0.5);
  H.observe(100.0);

  const std::string Json = telemetry::snapshotMetricsJson();
  EXPECT_TRUE(isValidJson(Json)) << Json;
  std::map<std::string, std::string> Top;
  ASSERT_TRUE(parseJsonObject(Json, Top));
  ASSERT_TRUE(Top.count("counters"));
  ASSERT_TRUE(Top.count("gauges"));
  ASSERT_TRUE(Top.count("histograms"));
  EXPECT_NE(Top["counters"].find("\"test.snapshot.counter\":7"),
            std::string::npos);
  // The overflow bucket serializes with "le":"inf".
  EXPECT_NE(Top["histograms"].find("\"le\":\"inf\""), std::string::npos);

  const std::string Text = telemetry::metricsTextReport();
  EXPECT_NE(Text.find("test.snapshot.counter"), std::string::npos);
  EXPECT_NE(Text.find("test.snapshot.hist"), std::string::npos);
}

TEST(MetricsRegistry, WriteMetricsJsonRoundTrips) {
  telemetry::counter("test.file.counter").inc();
  const std::string Path = tempPath("oppsla_metrics_test.json");
  ASSERT_TRUE(telemetry::writeMetricsJson(Path));
  std::ifstream In(Path);
  std::string Json((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("test.file.counter"), std::string::npos);
  std::remove(Path.c_str());
  EXPECT_FALSE(telemetry::writeMetricsJson("/nonexistent/dir/m.json"));
}

//===----------------------------------------------------------------------===//
// ScopedTimer
//===----------------------------------------------------------------------===//

TEST(ScopedTimer, RecordsIntoHistogram) {
  telemetry::Histogram H({1.0, 10.0});
  {
    telemetry::ScopedTimer T(&H);
    EXPECT_GE(T.seconds(), 0.0);
  }
  EXPECT_EQ(H.count(), 1u);
  EXPECT_GE(H.sum(), 0.0);
  EXPECT_LT(H.sum(), 1.0) << "an empty scope takes well under a second";
}

TEST(ScopedTimer, CancelRecordsNothing) {
  telemetry::Histogram H({1.0});
  {
    telemetry::ScopedTimer T(&H);
    T.cancel();
  }
  EXPECT_EQ(H.count(), 0u);
}

//===----------------------------------------------------------------------===//
// TraceWriter
//===----------------------------------------------------------------------===//

TEST(TraceWriter, DisabledByDefaultAndNoOp) {
  ASSERT_FALSE(telemetry::traceEnabled())
      << "tests must not leak an open trace sink";
  telemetry::traceEvent("ignored", {{"k", 1}}); // must not crash
}

TEST(TraceWriter, EmitsValidJsonl) {
  TraceGuard Guard;
  const std::string Path = tempPath("oppsla_trace_test.jsonl");
  ASSERT_TRUE(telemetry::TraceWriter::instance().open(Path));
  EXPECT_TRUE(telemetry::traceEnabled());

  telemetry::traceEvent("alpha", {{"idx", 0},
                                  {"name", "plain"},
                                  {"ok", true},
                                  {"score", 0.25}});
  telemetry::traceEvent(
      "beta", {{"text", std::string("quote\" slash\\ nl\n tab\t ctl\x01")},
               {"neg", static_cast<int64_t>(-3)},
               {"big", static_cast<uint64_t>(1) << 40}});
  telemetry::TraceWriter::instance().close();
  EXPECT_FALSE(telemetry::traceEnabled());

  const std::vector<std::string> Lines = readLines(Path);
  ASSERT_EQ(Lines.size(), 2u);
  for (const std::string &Line : Lines)
    EXPECT_TRUE(isValidJson(Line)) << Line;

  std::map<std::string, std::string> A, B;
  ASSERT_TRUE(parseJsonObject(Lines[0], A));
  EXPECT_EQ(A["type"], "alpha");
  EXPECT_EQ(A["idx"], "0");
  EXPECT_EQ(A["name"], "plain");
  EXPECT_EQ(A["ok"], "true");
  EXPECT_EQ(A["score"], "0.25");
  EXPECT_TRUE(A.count("ts_us")) << "events carry a timestamp";

  ASSERT_TRUE(parseJsonObject(Lines[1], B));
  EXPECT_EQ(B["text"], "quote\" slash\\ nl\n tab\t ctl\x01")
      << "escaping must round-trip through a JSON parser";
  EXPECT_EQ(B["neg"], "-3");
  EXPECT_EQ(B["big"], std::to_string(uint64_t(1) << 40));
  std::remove(Path.c_str());
}

TEST(TraceWriter, CountsEventsAndRejectsBadPath) {
  TraceGuard Guard;
  EXPECT_FALSE(
      telemetry::TraceWriter::instance().open("/nonexistent/dir/t.jsonl"));
  EXPECT_FALSE(telemetry::traceEnabled());

  const std::string Path = tempPath("oppsla_trace_count.jsonl");
  ASSERT_TRUE(telemetry::TraceWriter::instance().open(Path));
  for (int I = 0; I != 5; ++I)
    telemetry::traceEvent("tick", {{"i", I}});
  EXPECT_EQ(telemetry::TraceWriter::instance().eventsWritten(), 5u);
  telemetry::TraceWriter::instance().close();
  EXPECT_EQ(readLines(Path).size(), 5u);
  std::remove(Path.c_str());
}

TEST(TraceWriter, ImageContextDefaultsToUnset) {
  EXPECT_EQ(telemetry::traceImage(), -1);
  telemetry::setTraceImage(42);
  EXPECT_EQ(telemetry::traceImage(), 42);
  telemetry::setTraceImage(-1);
  EXPECT_EQ(telemetry::traceImage(), -1);
}
