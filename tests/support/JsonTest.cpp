//===- tests/support/JsonTest.cpp - JSON document model tests -----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The reading-side JSON model behind the bench ledger and the regression
// gate: parser acceptance/rejection, escape handling, key order, and the
// writer helpers (escape / appendNumber) the ledger rows are rendered with.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace oppsla;

namespace {

json::Value parseOk(const std::string &Text) {
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Text, V, Error)) << Text << ": " << Error;
  return V;
}

std::string parseErr(const std::string &Text) {
  json::Value V;
  std::string Error;
  EXPECT_FALSE(json::parse(Text, V, Error)) << "accepted: " << Text;
  return Error;
}

} // namespace

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").boolean());
  EXPECT_FALSE(parseOk("false").boolean());
  EXPECT_DOUBLE_EQ(parseOk("42").number(), 42.0);
  EXPECT_DOUBLE_EQ(parseOk("-0.5").number(), -0.5);
  EXPECT_DOUBLE_EQ(parseOk("1.25e3").number(), 1250.0);
  EXPECT_EQ(parseOk("\"hi\"").str(), "hi");
  EXPECT_EQ(parseOk("  \" spaced \"  ").str(), " spaced ");
}

TEST(Json, ParsesEscapes) {
  EXPECT_EQ(parseOk(R"("a\"b\\c\/d\n\t")").str(), "a\"b\\c/d\n\t");
  // \u escapes: ASCII, two-byte, and three-byte UTF-8 encodings.
  EXPECT_EQ(parseOk(R"("A")").str(), "A");
  EXPECT_EQ(parseOk(R"("é")").str(), "\xc3\xa9");
  EXPECT_EQ(parseOk(R"("€")").str(), "\xe2\x82\xac");
}

TEST(Json, ParsesContainers) {
  const json::Value A = parseOk("[1, [2, 3], {\"k\": 4}]");
  ASSERT_TRUE(A.isArray());
  ASSERT_EQ(A.array().size(), 3u);
  EXPECT_DOUBLE_EQ(A.array()[0].number(), 1.0);
  EXPECT_DOUBLE_EQ(A.array()[1].array()[1].number(), 3.0);
  EXPECT_DOUBLE_EQ(A.array()[2].getNumber("k"), 4.0);

  EXPECT_TRUE(parseOk("[]").array().empty());
  EXPECT_TRUE(parseOk("{}").members().empty());
}

TEST(Json, ObjectKeepsKeyOrderAndLookupWorks) {
  const json::Value O = parseOk(R"({"z": 1, "a": "two", "m": true})");
  ASSERT_TRUE(O.isObject());
  ASSERT_EQ(O.members().size(), 3u);
  EXPECT_EQ(O.members()[0].first, "z");
  EXPECT_EQ(O.members()[1].first, "a");
  EXPECT_EQ(O.members()[2].first, "m");

  EXPECT_DOUBLE_EQ(O.getNumber("z"), 1.0);
  EXPECT_EQ(O.getString("a"), "two");
  ASSERT_NE(O.find("m"), nullptr);
  EXPECT_TRUE(O.find("m")->boolean());
  EXPECT_EQ(O.find("missing"), nullptr);
  // Typed getters fall back on kind mismatch, not just absence.
  EXPECT_DOUBLE_EQ(O.getNumber("a", -1.0), -1.0);
  EXPECT_EQ(O.getString("z", "dflt"), "dflt");
}

TEST(Json, RejectsMalformedInput) {
  parseErr("");
  parseErr("{");
  parseErr("[1, 2");
  parseErr("{\"a\": }");
  parseErr("{\"a\": 1,}"); // trailing comma
  parseErr("[1, 2,]");
  parseErr("'single'");
  parseErr("{\"a\" 1}");
  parseErr("nul");
  parseErr("\"unterminated");
  parseErr("1 2");           // trailing content
  parseErr("{} garbage");    // trailing content after document
  const std::string Error = parseErr("{\"a\": tru}");
  EXPECT_NE(Error.find("offset"), std::string::npos) << Error;
}

TEST(Json, RejectsRunawayNesting) {
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  parseErr(Deep);
}

TEST(Json, EscapeHelperRoundTrips) {
  std::string Out;
  json::escape(Out, "a\"b\\c\nd\te\x01");
  // Escaped text re-parses to the original bytes.
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse("\"" + Out + "\"", V, Error)) << Error;
  EXPECT_EQ(V.str(), "a\"b\\c\nd\te\x01");
}

TEST(Json, AppendNumberMatchesWriterConventions) {
  std::string Out;
  json::appendNumber(Out, 0.25);
  EXPECT_EQ(Out, "0.25");
  Out.clear();
  json::appendNumber(Out, 1234567.0);
  EXPECT_EQ(Out, "1234567");
  // Non-finite numbers are not representable in JSON; null keeps the
  // document parseable.
  Out.clear();
  json::appendNumber(Out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(Out, "null");
  Out.clear();
  json::appendNumber(Out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(Out, "null");
}
