//===- tests/support/PrometheusTest.cpp - Exposition conformance --------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Validates the Prometheus text exposition (version 0.0.4) produced for
// the /metrics endpoint: HELP/TYPE headers precede samples, counters get
// the _total suffix, metric names are sanitized, histogram bucket series
// are cumulative with le="+Inf" equal to _count, and run-info label values
// are escaped per the format's rules.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

using namespace oppsla;

namespace {

std::vector<std::string> linesOf(const std::string &Text) {
  std::vector<std::string> Lines;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  return Lines;
}

/// Index of the first line starting with \p Prefix, or npos.
size_t findLine(const std::vector<std::string> &Lines,
                const std::string &Prefix, size_t From = 0) {
  for (size_t I = From; I < Lines.size(); ++I)
    if (Lines[I].rfind(Prefix, 0) == 0)
      return I;
  return std::string::npos;
}

} // namespace

TEST(Prometheus, CounterHasHelpTypeAndTotalSuffix) {
  telemetry::counter("promtest.hits").inc(7);
  const auto Lines = linesOf(telemetry::prometheusTextExposition());

  const size_t Help = findLine(Lines, "# HELP oppsla_promtest_hits_total ");
  const size_t Type = findLine(Lines, "# TYPE oppsla_promtest_hits_total ");
  const size_t Sample = findLine(Lines, "oppsla_promtest_hits_total ");
  ASSERT_NE(Help, std::string::npos);
  ASSERT_NE(Type, std::string::npos);
  ASSERT_NE(Sample, std::string::npos);
  EXPECT_LT(Help, Sample) << "HELP must precede the sample";
  EXPECT_LT(Type, Sample) << "TYPE must precede the sample";
  EXPECT_EQ(Lines[Type], "# TYPE oppsla_promtest_hits_total counter");
  EXPECT_EQ(Lines[Sample], "oppsla_promtest_hits_total 7");
}

TEST(Prometheus, MetricNamesAreSanitized) {
  telemetry::counter("promtest.weird-name").inc();
  const std::string Text = telemetry::prometheusTextExposition();
  EXPECT_NE(Text.find("oppsla_promtest_weird_name_total 1"),
            std::string::npos)
      << "dots and dashes must map to underscores";
  // No raw dot/dash survives into any sample line of this metric.
  EXPECT_EQ(Text.find("oppsla_promtest.weird"), std::string::npos);
}

TEST(Prometheus, GaugeExposition) {
  telemetry::gauge("promtest.level").set(2.5);
  const auto Lines = linesOf(telemetry::prometheusTextExposition());
  const size_t Type = findLine(Lines, "# TYPE oppsla_promtest_level ");
  const size_t Sample = findLine(Lines, "oppsla_promtest_level ");
  ASSERT_NE(Type, std::string::npos);
  ASSERT_NE(Sample, std::string::npos);
  EXPECT_EQ(Lines[Type], "# TYPE oppsla_promtest_level gauge");
  EXPECT_EQ(Lines[Sample], "oppsla_promtest_level 2.5");
}

TEST(Prometheus, GaugeAddAccumulates) {
  telemetry::Gauge G;
  G.add(1.5);
  G.add(2.0);
  G.add(-0.5);
  EXPECT_DOUBLE_EQ(G.value(), 3.0);
}

TEST(Prometheus, HistogramBucketsAreCumulative) {
  auto &H = telemetry::histogram("promtest.lat", {1.0, 2.0, 4.0});
  H.observe(0.5); // bucket le=1
  H.observe(1.5); // bucket le=2
  H.observe(3.0); // bucket le=4
  H.observe(9.0); // overflow
  const auto Lines = linesOf(telemetry::prometheusTextExposition());

  const size_t B1 = findLine(Lines, "oppsla_promtest_lat_bucket{le=\"1\"}");
  const size_t B2 = findLine(Lines, "oppsla_promtest_lat_bucket{le=\"2\"}");
  const size_t B4 = findLine(Lines, "oppsla_promtest_lat_bucket{le=\"4\"}");
  const size_t BInf =
      findLine(Lines, "oppsla_promtest_lat_bucket{le=\"+Inf\"}");
  const size_t Sum = findLine(Lines, "oppsla_promtest_lat_sum ");
  const size_t Count = findLine(Lines, "oppsla_promtest_lat_count ");
  ASSERT_NE(B1, std::string::npos);
  ASSERT_NE(B2, std::string::npos);
  ASSERT_NE(B4, std::string::npos);
  ASSERT_NE(BInf, std::string::npos);
  ASSERT_NE(Sum, std::string::npos);
  ASSERT_NE(Count, std::string::npos);

  EXPECT_EQ(Lines[B1], "oppsla_promtest_lat_bucket{le=\"1\"} 1");
  EXPECT_EQ(Lines[B2], "oppsla_promtest_lat_bucket{le=\"2\"} 2");
  EXPECT_EQ(Lines[B4], "oppsla_promtest_lat_bucket{le=\"4\"} 3");
  EXPECT_EQ(Lines[BInf], "oppsla_promtest_lat_bucket{le=\"+Inf\"} 4")
      << "+Inf bucket must equal the total observation count";
  EXPECT_EQ(Lines[Count], "oppsla_promtest_lat_count 4");
  EXPECT_EQ(Lines[Sum], "oppsla_promtest_lat_sum 14");
  // Ordering within the family: buckets ascending, then sum, then count.
  EXPECT_LT(B1, B2);
  EXPECT_LT(B2, B4);
  EXPECT_LT(B4, BInf);
  EXPECT_LT(BInf, Sum);
  EXPECT_LT(Sum, Count);
}

TEST(Prometheus, RunInfoLabelValuesAreEscaped) {
  telemetry::setRunInfo("promtest_label", "a\"b\\c\nd");
  const std::string Text = telemetry::prometheusTextExposition();
  // Escaping per the text format: \ -> \\, " -> \", newline -> \n.
  EXPECT_NE(Text.find("promtest_label=\"a\\\"b\\\\c\\nd\""),
            std::string::npos)
      << Text;
  const auto Lines = linesOf(Text);
  const size_t Info = findLine(Lines, "oppsla_run_info{");
  ASSERT_NE(Info, std::string::npos);
  EXPECT_EQ(Lines[Info].substr(Lines[Info].size() - 3), "} 1");
}

//===----------------------------------------------------------------------===//
// Histogram quantile estimation (feeds the p50/p90/p99 report columns)
//===----------------------------------------------------------------------===//

TEST(HistogramQuantile, EmptyReturnsZero) {
  telemetry::Histogram H({1.0, 2.0});
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 0.0);
}

TEST(HistogramQuantile, InterpolatesWithinBucket) {
  telemetry::Histogram H({10.0, 20.0, 40.0});
  // 10 observations, all in the (10, 20] bucket.
  for (int I = 0; I != 10; ++I)
    H.observe(15.0);
  // Rank 5 of 10 lands halfway through the bucket: 10 + (20-10)*(5/10).
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.9), 19.0);
  // The first bucket's lower edge is 0 (observations are non-negative).
  telemetry::Histogram H2({10.0, 20.0});
  for (int I = 0; I != 4; ++I)
    H2.observe(1.0);
  EXPECT_DOUBLE_EQ(H2.quantile(0.5), 5.0) << "0 + (10-0) * (2/4)";
}

TEST(HistogramQuantile, SpansBuckets) {
  telemetry::Histogram H({10.0, 20.0});
  H.observe(5.0);  // bucket (0, 10]
  H.observe(5.0);  // bucket (0, 10]
  H.observe(15.0); // bucket (10, 20]
  H.observe(15.0); // bucket (10, 20]
  // p25 (rank 1) is mid first bucket; p75 (rank 3) mid second.
  EXPECT_DOUBLE_EQ(H.quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.75), 15.0);
}

TEST(HistogramQuantile, OverflowClampsToLastBound) {
  telemetry::Histogram H({10.0, 20.0});
  for (int I = 0; I != 4; ++I)
    H.observe(100.0); // all overflow
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.99), 20.0);
}

TEST(HistogramQuantile, ReportsCarryQuantiles) {
  auto &H = telemetry::histogram("promtest.qdist", {8.0, 64.0});
  H.observe(4.0);
  const std::string Text = telemetry::metricsTextReport();
  EXPECT_NE(Text.find("p50="), std::string::npos);
  EXPECT_NE(Text.find("p90="), std::string::npos);
  EXPECT_NE(Text.find("p99="), std::string::npos);
  const std::string Json = telemetry::snapshotMetricsJson();
  EXPECT_NE(Json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(Json.find("\"p99\":"), std::string::npos);
}
