//===- tests/support/RngTest.cpp - Rng unit tests -----------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace oppsla;

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 A(42), B(42), C(43);
  const uint64_t A1 = A.next();
  EXPECT_EQ(A1, B.next());
  EXPECT_NE(A1, C.next());
  EXPECT_NE(A.next(), A1) << "stream must advance";
}

TEST(Rng, SameSeedSameStream) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.nextU64(), B.nextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  size_t Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.nextU64() == B.nextU64();
  EXPECT_LT(Same, 2u);
}

TEST(Rng, ReseedRestartsStream) {
  Rng A(9);
  const uint64_t First = A.nextU64();
  A.nextU64();
  A.reseed(9);
  EXPECT_EQ(A.nextU64(), First);
}

TEST(Rng, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I != 10000; ++I) {
    const double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    const double U = R.uniform(-3.0, 5.5);
    EXPECT_GE(U, -3.0);
    EXPECT_LT(U, 5.5);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng R(11);
  double Sum = 0.0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Sum += R.uniform();
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
}

TEST(Rng, BoundedStaysInRange) {
  Rng R(5);
  for (uint64_t N : {1ull, 2ull, 3ull, 7ull, 1000ull}) {
    for (int I = 0; I != 2000; ++I)
      EXPECT_LT(R.bounded(N), N);
  }
}

TEST(Rng, BoundedOneIsAlwaysZero) {
  Rng R(5);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(R.bounded(1), 0u);
}

TEST(Rng, BoundedCoversAllValues) {
  Rng R(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 1000; ++I)
    Seen.insert(R.bounded(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Rng, IntInInclusiveRange) {
  Rng R(17);
  std::set<int> Seen;
  for (int I = 0; I != 2000; ++I) {
    const int V = R.intIn(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng R(23);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng R(29);
  double Sum = 0.0, SqSum = 0.0;
  const int N = 100000;
  for (int I = 0; I != N; ++I) {
    const double X = R.normal();
    Sum += X;
    SqSum += X * X;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.02);
  EXPECT_NEAR(SqSum / N, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
  Rng R(31);
  double Sum = 0.0;
  const int N = 50000;
  for (int I = 0; I != N; ++I)
    Sum += R.normal(10.0, 2.0);
  EXPECT_NEAR(Sum / N, 10.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng R(37);
  std::vector<int> V(100);
  for (int I = 0; I != 100; ++I)
    V[static_cast<size_t>(I)] = I;
  std::vector<int> Orig = V;
  R.shuffle(V);
  EXPECT_FALSE(std::equal(V.begin(), V.end(), Orig.begin()))
      << "astronomically unlikely to be identity";
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng R(41);
  std::vector<int> Empty;
  R.shuffle(Empty);
  EXPECT_TRUE(Empty.empty());
  std::vector<int> One = {5};
  R.shuffle(One);
  EXPECT_EQ(One, std::vector<int>{5});
}

TEST(Rng, PickReturnsElement) {
  Rng R(43);
  const std::vector<int> V = {10, 20, 30};
  for (int I = 0; I != 50; ++I) {
    const int X = R.pick(V);
    EXPECT_TRUE(X == 10 || X == 20 || X == 30);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng A(47);
  Rng Child = A.fork();
  // Child stream should differ from the parent's continuation.
  size_t Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.nextU64() == Child.nextU64();
  EXPECT_LT(Same, 2u);
}

// Property sweep: bounded() is unbiased enough across seeds (chi-square-ish
// sanity, not a strict statistical test).
class RngBoundedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundedSweep, RoughlyUniform) {
  Rng R(GetParam());
  constexpr uint64_t K = 5;
  size_t Counts[K] = {};
  const int N = 20000;
  for (int I = 0; I != N; ++I)
    ++Counts[R.bounded(K)];
  for (size_t B = 0; B != K; ++B)
    EXPECT_NEAR(static_cast<double>(Counts[B]), N / double(K),
                0.08 * N / double(K));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundedSweep,
                         ::testing::Values(1, 2, 3, 1234, 987654321));
