//===- tests/support/ThreadPoolTest.cpp - Worker pool tests -------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

using namespace oppsla;

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::atomic<int> Ran{0};
  std::vector<std::future<void>> Futures;
  for (int I = 0; I != 100; ++I)
    Futures.push_back(Pool.submit([&Ran] { ++Ran; }));
  for (auto &F : Futures)
    F.get();
  EXPECT_EQ(Ran.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numThreads(), 1u);
  auto F = Pool.submit([] {});
  F.get();
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool Pool(2);
  auto Good = Pool.submit([] {});
  auto Bad = Pool.submit([] { throw std::runtime_error("task failed"); });
  Good.get();
  EXPECT_THROW(Bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps running new ones.
  auto After = Pool.submit([] {});
  After.get();
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool Pool(3);
  std::atomic<int> Total{0};
  for (int Batch = 0; Batch != 5; ++Batch) {
    std::vector<std::future<void>> Futures;
    for (int I = 0; I != 20; ++I)
      Futures.push_back(Pool.submit([&Total] { ++Total; }));
    for (auto &F : Futures)
      F.get();
    EXPECT_EQ(Total.load(), (Batch + 1) * 20);
  }
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(1);
    for (int I = 0; I != 50; ++I)
      Pool.submit([&Ran] { ++Ran; });
    // Destructor must run all 50, not drop queued tasks.
  }
  EXPECT_EQ(Ran.load(), 50);
}

TEST(ThreadPool, ForEachCoversAllIndicesExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(97);
  Pool.forEach(97, [&Hits](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ForEachZeroIsANoop) {
  ThreadPool Pool(2);
  Pool.forEach(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ForEachRethrowsLowestFailingIndex) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  try {
    Pool.forEach(64, [&Ran](size_t I) {
      ++Ran;
      if (I == 7 || I == 31)
        throw std::runtime_error("fail@" + std::to_string(I));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "fail@7");
  }
  EXPECT_EQ(Ran.load(), 64) << "remaining indices still run";
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

namespace {

ArgParse makeArgs(std::vector<const char *> Argv) {
  Argv.insert(Argv.begin(), "prog");
  return ArgParse(static_cast<int>(Argv.size()), Argv.data());
}

} // namespace

TEST(ThreadCountFromArgs, ExplicitCount) {
  EXPECT_EQ(threadCountFromArgs(makeArgs({"--threads", "4"})), 4u);
  EXPECT_EQ(threadCountFromArgs(makeArgs({"--threads", "1"})), 1u);
}

TEST(ThreadCountFromArgs, AbsentUsesDefault) {
  EXPECT_EQ(threadCountFromArgs(makeArgs({})), 1u);
  EXPECT_EQ(threadCountFromArgs(makeArgs({}), 8), 8u);
}

TEST(ThreadCountFromArgs, ZeroMeansAllCores) {
  EXPECT_EQ(threadCountFromArgs(makeArgs({"--threads", "0"})),
            ThreadPool::hardwareThreads());
}
