//===- tests/support/StatsTest.cpp - Stats unit tests -------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace oppsla;

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({-1.0, 1.0}), 0.0);
}

TEST(Stats, StddevBasics) {
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({7.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0, 1.0, 1.0}), 0.0);
  // Population stddev of {2, 4} is 1.
  EXPECT_DOUBLE_EQ(stddev({2.0, 4.0}), 1.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, MedianDoesNotRequireSortedInput) {
  EXPECT_DOUBLE_EQ(median({9.0, 1.0, 5.0, 7.0, 3.0}), 5.0);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> V = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 4.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> V = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(V, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 5.0);
}

TEST(Stats, QuantileSingleton) {
  EXPECT_DOUBLE_EQ(quantile({42.0}, 0.99), 42.0);
}

// The total contract the bench ledger's histogram folding relies on:
// quantile() never returns NaN, for any sample vector and any Q.
TEST(Stats, QuantileEmptyIsZeroForEveryQ) {
  for (double Q : {-1.0, 0.0, 0.5, 0.99, 1.0, 2.0}) {
    const double R = quantile({}, Q);
    EXPECT_DOUBLE_EQ(R, 0.0) << "Q=" << Q;
    EXPECT_FALSE(std::isnan(R));
  }
}

TEST(Stats, QuantileSingleSampleForEveryQ) {
  for (double Q : {-0.5, 0.0, 0.5, 1.0, 1.5})
    EXPECT_DOUBLE_EQ(quantile({7.0}, Q), 7.0) << "Q=" << Q;
}

TEST(Stats, QuantileClampsOutOfRangeQ) {
  const std::vector<double> V = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(V, -3.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(V, 17.0), 4.0);
  // A NaN Q clamps to 0 rather than poisoning the interpolation.
  EXPECT_DOUBLE_EQ(quantile(V, std::nan("")), 1.0);
}

TEST(Stats, QuantileDropsNaNSamples) {
  const double N = std::nan("");
  EXPECT_DOUBLE_EQ(quantile({N, 3.0, N, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({N, 5.0}, 1.0), 5.0);
  // All-NaN degenerates to the empty vector's answer.
  const double R = quantile({N, N, N}, 0.9);
  EXPECT_DOUBLE_EQ(R, 0.0);
  EXPECT_FALSE(std::isnan(R));
}

TEST(RunningStat, MatchesDirectComputation) {
  const std::vector<double> V = {1.0, 4.0, 2.0, 8.0, 5.0};
  RunningStat S;
  for (double X : V)
    S.addTracked(X);
  EXPECT_EQ(S.count(), V.size());
  EXPECT_NEAR(S.mean(), mean(V), 1e-12);
  EXPECT_NEAR(S.stddev(), stddev(V), 1e-12);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 8.0);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  S.add(3.0);
  EXPECT_DOUBLE_EQ(S.mean(), 3.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
}

TEST(QuerySample, SuccessRate) {
  QuerySample S;
  EXPECT_DOUBLE_EQ(S.successRate(), 0.0);
  S.SuccessQueries = {10.0, 20.0, 30.0};
  S.NumFailures = 1;
  EXPECT_DOUBLE_EQ(S.successRate(), 0.75);
  EXPECT_EQ(S.numAttacks(), 4u);
}

TEST(QuerySample, AvgAndMedianOverSuccessesOnly) {
  QuerySample S;
  S.SuccessQueries = {10.0, 30.0};
  S.NumFailures = 100; // failures must not affect avg/median
  EXPECT_DOUBLE_EQ(S.avgQueries(), 20.0);
  EXPECT_DOUBLE_EQ(S.medianQueries(), 20.0);
}

TEST(QuerySample, SuccessRateAtBudget) {
  QuerySample S;
  S.SuccessQueries = {5.0, 50.0, 500.0};
  S.NumFailures = 1;
  EXPECT_DOUBLE_EQ(S.successRateAtBudget(4.0), 0.0);
  EXPECT_DOUBLE_EQ(S.successRateAtBudget(5.0), 0.25);
  EXPECT_DOUBLE_EQ(S.successRateAtBudget(100.0), 0.5);
  EXPECT_DOUBLE_EQ(S.successRateAtBudget(1e9), 0.75);
}

TEST(QuerySample, MergeCombines) {
  QuerySample A, B;
  A.SuccessQueries = {1.0};
  A.NumFailures = 2;
  B.SuccessQueries = {3.0, 4.0};
  B.NumFailures = 1;
  A.merge(B);
  EXPECT_EQ(A.SuccessQueries.size(), 3u);
  EXPECT_EQ(A.NumFailures, 3u);
  EXPECT_EQ(A.numAttacks(), 6u);
}

// Quantile sweep: for a known arithmetic sequence the quantile is linear.
class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, LinearSequence) {
  std::vector<double> V;
  for (int I = 0; I <= 100; ++I)
    V.push_back(static_cast<double>(I));
  const double Q = GetParam();
  EXPECT_NEAR(quantile(V, Q), 100.0 * Q, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));
