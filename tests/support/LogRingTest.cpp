//===- tests/support/LogRingTest.cpp - Log ring buffer tests ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The in-memory log ring behind `GET /logz`: every logLine lands in the
// ring regardless of the stderr threshold, records carry the ambient
// trace id, snapshots filter by level and bound, and the JSONL rendering
// is parseable. Ring state is process-global, so tests key their records
// with unique markers instead of assuming an empty ring.
//
//===----------------------------------------------------------------------===//

#include "support/Logging.h"

#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace oppsla;

namespace {

/// Records (oldest first) whose message contains \p Marker.
std::vector<LogRecord> recordsWith(const std::string &Marker,
                                   LogLevel MaxLevel = LogLevel::Debug) {
  std::vector<LogRecord> Out;
  for (const LogRecord &R : logRingSnapshot(1024, MaxLevel))
    if (R.Message.find(Marker) != std::string::npos)
      Out.push_back(R);
  return Out;
}

} // namespace

TEST(LogRing, RecordsAllLevelsRegardlessOfStderrThreshold) {
  const LogLevel Saved = logLevel();
  setLogLevel(LogLevel::Error); // stderr quiet below Error...
  logDebug() << "ring-marker-quiet-debug";
  setLogLevel(Saved);

  const auto Hits = recordsWith("ring-marker-quiet-debug");
  ASSERT_EQ(Hits.size(), 1u)
      << "the ring must keep debug lines even when stderr drops them";
  EXPECT_EQ(Hits[0].Level, LogLevel::Debug);
}

TEST(LogRing, SnapshotFiltersByLevelAndKeepsOrder) {
  logError() << "ring-marker-filter E1";
  logDebug() << "ring-marker-filter D1";
  logError() << "ring-marker-filter E2";

  const auto Errors = recordsWith("ring-marker-filter", LogLevel::Error);
  ASSERT_EQ(Errors.size(), 2u);
  EXPECT_NE(Errors[0].Message.find("E1"), std::string::npos);
  EXPECT_NE(Errors[1].Message.find("E2"), std::string::npos);
  EXPECT_LT(Errors[0].Seq, Errors[1].Seq) << "oldest first";
  EXPECT_LE(Errors[0].TsUs, Errors[1].TsUs);

  EXPECT_EQ(recordsWith("ring-marker-filter", LogLevel::Debug).size(), 3u);
}

TEST(LogRing, RecordsCarryAmbientTraceId) {
  {
    telemetry::TraceContextScope Scope("0123456789abcdef0123456789abcdef");
    logInfo() << "ring-marker-traced";
  }
  logInfo() << "ring-marker-untraced";

  const auto Traced = recordsWith("ring-marker-traced");
  ASSERT_EQ(Traced.size(), 1u);
  EXPECT_EQ(Traced[0].Trace, "0123456789abcdef0123456789abcdef");
  const auto Untraced = recordsWith("ring-marker-untraced");
  ASSERT_EQ(Untraced.size(), 1u);
  EXPECT_EQ(Untraced[0].Trace, "");
}

TEST(LogRing, JsonlRendersLevelTraceAndMessage) {
  {
    telemetry::TraceContextScope Scope("feedfacefeedfacefeedfacefeedface");
    logWarn() << "ring-marker-jsonl \"quoted\"";
  }
  const std::string Out = logRingJsonl(1024, LogLevel::Debug);
  const size_t Pos = Out.find("ring-marker-jsonl");
  ASSERT_NE(Pos, std::string::npos);
  const size_t LineBegin = Out.rfind('\n', Pos) + 1;
  const std::string Line =
      Out.substr(LineBegin, Out.find('\n', Pos) - LineBegin);
  EXPECT_NE(Line.find("\"level\":\"warn\""), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"trace\":\"feedfacefeedfacefeedfacefeedface\""),
            std::string::npos)
      << Line;
  EXPECT_NE(Line.find("\\\"quoted\\\""), std::string::npos)
      << "messages must be JSON-escaped: " << Line;
  EXPECT_NE(Line.find("\"seq\":"), std::string::npos);
  EXPECT_NE(Line.find("\"ts_us\":"), std::string::npos);
}

TEST(LogRing, BoundsSnapshotToMaxEntries) {
  for (int I = 0; I != 20; ++I)
    logInfo() << "ring-marker-bound " << I;
  EXPECT_LE(logRingSnapshot(5, LogLevel::Debug).size(), 5u);
  // The 5 newest of our 20 are the tail; the snapshot is newest-biased.
  const auto Tail = logRingSnapshot(5, LogLevel::Debug);
  ASSERT_FALSE(Tail.empty());
  EXPECT_NE(Tail.back().Message.find("ring-marker-bound 19"),
            std::string::npos)
      << Tail.back().Message;
}

TEST(LogRing, ConcurrentWritersNeverTearRecords) {
  constexpr int WritersN = 4, PerWriter = 400; // > ring capacity combined
  std::vector<std::thread> Writers;
  for (int W = 0; W != WritersN; ++W)
    Writers.emplace_back([W] {
      for (int I = 0; I != PerWriter; ++I)
        logInfo() << "ring-marker-race w" << W << " i" << I
                  << " padpadpadpadpadpadpadpad";
    });
  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    while (!Stop.load())
      for (const LogRecord &R : logRingSnapshot(256, LogLevel::Debug))
        if (R.Message.find("ring-marker-race") != std::string::npos) {
          // A torn record would interleave two writers' bytes; the
          // "wN iM" prefix must always parse back out intact.
          const size_t WPos = R.Message.find(" w");
          const size_t IPos = R.Message.find(" i");
          ASSERT_NE(WPos, std::string::npos) << R.Message;
          ASSERT_NE(IPos, std::string::npos) << R.Message;
        }
  });
  for (std::thread &T : Writers)
    T.join();
  Stop.store(true);
  Reader.join();

  // Wrap-around: only the newest RingSlots records remain reachable, and
  // every survivor is valid.
  const auto Snapshot = logRingSnapshot(2048, LogLevel::Debug);
  EXPECT_LE(Snapshot.size(), 1024u);
  for (size_t I = 1; I < Snapshot.size(); ++I)
    EXPECT_LT(Snapshot[I - 1].Seq, Snapshot[I].Seq)
        << "sequence numbers must stay strictly increasing";
}
