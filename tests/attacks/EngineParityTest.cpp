//===- tests/attacks/EngineParityTest.cpp - engine on == engine off ----------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The acceptance contract of the query engine: running any attack through
// a QueryEngine (batching + memoizing cache + speculative prefetch) yields
// the *identical* AttackResult — outcome, query count, chosen pixel — as
// running it directly against the classifier. Prefetch mispredictions may
// waste physical forwards, never change a logical answer.
//
//===----------------------------------------------------------------------===//

#include "attacks/KPixelRS.h"
#include "attacks/RandomPairSearch.h"
#include "attacks/SketchAttack.h"
#include "attacks/SparseRS.h"
#include "attacks/SuOPA.h"
#include "engine/QueryEngine.h"

#include "TestUtil.h"
#include <algorithm>
#include <gtest/gtest.h>

using namespace oppsla;
using test::FakeClassifier;
using test::randomImage;

namespace {

/// A classifier with a one-pixel-flippable decision boundary *and* graded
/// margins, so acceptance decisions (and hence speculation mispredictions)
/// actually vary: class 1 wins iff some pixel is near-white; otherwise its
/// confidence still grows with the brightest pixel.
FakeClassifier vulnerableClassifier() {
  return FakeClassifier(3, [](const Image &Img) {
    float Best = 0.0f;
    for (size_t I = 0; I != Img.height(); ++I)
      for (size_t J = 0; J != Img.width(); ++J) {
        const Pixel P = Img.pixel(I, J);
        Best = std::max(Best, P.minChannel());
      }
    const float C1 = Best > 0.95f ? 0.9f : 0.2f + 0.25f * Best;
    return std::vector<float>{1.0f - C1 - 0.05f, C1, 0.05f};
  });
}

void expectSameResult(const AttackResult &Plain, const AttackResult &Engine,
                      const char *What) {
  EXPECT_EQ(Plain.Success, Engine.Success) << What;
  EXPECT_EQ(Plain.Queries, Engine.Queries) << What;
  EXPECT_EQ(Plain.AlreadyMisclassified, Engine.AlreadyMisclassified) << What;
  if (Plain.Success && !Plain.AlreadyMisclassified) {
    EXPECT_EQ(Plain.Loc.Row, Engine.Loc.Row) << What;
    EXPECT_EQ(Plain.Loc.Col, Engine.Loc.Col) << What;
    EXPECT_EQ(Plain.Perturbation.R, Engine.Perturbation.R) << What;
    EXPECT_EQ(Plain.Perturbation.G, Engine.Perturbation.G) << What;
    EXPECT_EQ(Plain.Perturbation.B, Engine.Perturbation.B) << What;
  }
}

/// Runs \p A against the raw classifier and against an engine wrap (batch
/// 4, cache on) and requires identical results for several images and
/// budgets.
void checkParity(Attack &A) {
  const uint64_t Budgets[] = {16, 120, 2000};
  for (const uint64_t Budget : Budgets)
    for (uint64_t ImgSeed = 1; ImgSeed != 4; ++ImgSeed) {
      const Image X = randomImage(6, 6, ImgSeed * 0x51);

      FakeClassifier Plain = vulnerableClassifier();
      const AttackResult RPlain = A.attack(Plain, X, 0, Budget);

      FakeClassifier Inner = vulnerableClassifier();
      QueryEngineConfig Config;
      Config.BatchSize = 4;
      Config.CacheCapacity = 512;
      QueryEngine Engine(Inner, Config);
      const AttackResult REngine = A.attack(Engine, X, 0, Budget);

      expectSameResult(RPlain, REngine,
                       (A.name() + " budget " + std::to_string(Budget) +
                        " image " + std::to_string(ImgSeed))
                           .c_str());
      // The engine must never pose more logical queries than the attack
      // reported (prefetch is not a logical query).
      EXPECT_EQ(Engine.logicalQueries(), REngine.Queries);
    }
}

} // namespace

TEST(EngineParity, SuOPA) {
  SuOPAConfig Config;
  Config.PopulationSize = 20;
  Config.MaxGenerations = 6;
  Config.PrefetchWindow = 8;
  SuOPA A(Config);
  checkParity(A);
}

TEST(EngineParity, SparseRS) {
  SparseRS A;
  checkParity(A);
}

TEST(EngineParity, KPixelRS) {
  KPixelRSConfig Config;
  Config.K = 3;
  KPixelRS A(Config);
  checkParity(A);
}

TEST(EngineParity, RandomPairSearch) {
  RandomPairSearch A;
  checkParity(A);
}

TEST(EngineParity, SketchAllFalse) {
  SketchAttack A(allFalseProgram(), "Sketch+False");
  checkParity(A);
}

TEST(EngineParity, SketchAllTrueEagerPath) {
  // allTrueProgram drives the eager B3/B4 BFS maximally, exercising the
  // neighbor-batch prefetch path.
  SketchAttack A(allTrueProgram(), "Sketch+True");
  checkParity(A);
}

TEST(EngineParity, SketchPaperProgram) {
  SketchAttack A(paperExampleProgram(), "paper");
  checkParity(A);
}
