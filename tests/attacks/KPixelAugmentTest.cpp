//===- tests/attacks/KPixelAugmentTest.cpp - KPixelRS & Augment ---------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/KPixelRS.h"
#include "data/Augment.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace oppsla;
using namespace oppsla::test;

namespace {

Image midGray(size_t Side) {
  Image Img(Side, Side);
  for (float &V : Img.raw())
    V = 0.5f;
  return Img;
}

/// Flips to class 1 only when at least \p Need pixels are near-white —
/// requires a genuinely multi-pixel perturbation.
FakeClassifier needsWhitePixels(size_t Need) {
  return FakeClassifier(2, [Need](const Image &X) {
    size_t Count = 0;
    for (size_t I = 0; I != X.height(); ++I)
      for (size_t J = 0; J != X.width(); ++J) {
        const Pixel P = X.pixel(I, J);
        Count += P.R > 0.95f && P.G > 0.95f && P.B > 0.95f;
      }
    if (Count >= Need)
      return std::vector<float>{0.2f, 0.8f};
    // Graded margin: more white pixels => lower confidence.
    const float Boost = 0.1f * static_cast<float>(Count);
    return std::vector<float>{0.8f - Boost, 0.2f + Boost};
  });
}

} // namespace

//===----------------------------------------------------------------------===//
// KPixelRS
//===----------------------------------------------------------------------===//

TEST(KPixelRS, KEqualsOneBehavesLikeOnePixelSearch) {
  FakeClassifier N = needsWhitePixels(1);
  KPixelRSConfig Config;
  Config.K = 1;
  KPixelRS A(Config);
  const AttackResult R = A.attack(N, midGray(6), 0, 20000);
  ASSERT_TRUE(R.Success);
}

TEST(KPixelRS, TwoPixelTargetNeedsTwoPixels) {
  // A one pixel attack cannot flip this classifier...
  {
    FakeClassifier N = needsWhitePixels(2);
    KPixelRSConfig Config;
    Config.K = 1;
    KPixelRS A(Config);
    EXPECT_FALSE(A.attack(N, midGray(5), 0, 3000).Success);
  }
  // ...but the two pixel variant can, and reports both pixels.
  {
    FakeClassifier N = needsWhitePixels(2);
    KPixelRSConfig Config;
    Config.K = 2;
    KPixelRS A(Config);
    const KPixelResult R = A.attackDetailed(N, midGray(5), 0, 60000);
    ASSERT_TRUE(R.Base.Success);
    ASSERT_EQ(R.Pixels.size(), 2u);
    EXPECT_FALSE(R.Pixels[0].Loc == R.Pixels[1].Loc);
    for (const LocPert &P : R.Pixels)
      EXPECT_EQ(P.Corner, 7) << "both perturbed pixels must be white";
  }
}

TEST(KPixelRS, PixelLocationsStayDistinct) {
  FakeClassifier N = robustClassifier(2);
  KPixelRSConfig Config;
  Config.K = 4;
  KPixelRS A(Config);
  const KPixelResult R = A.attackDetailed(N, midGray(4), 0, 500);
  EXPECT_FALSE(R.Base.Success);
  EXPECT_EQ(R.Base.Queries, 500u);
}

TEST(KPixelRS, RespectsBudgetAndCleanDetection) {
  FakeClassifier N = robustClassifier(2);
  KPixelRSConfig Config;
  Config.K = 3;
  KPixelRS A(Config);
  const AttackResult R1 = A.attack(N, midGray(5), 0, 50);
  EXPECT_FALSE(R1.Success);
  EXPECT_EQ(R1.Queries, 50u);
  const AttackResult R2 = A.attack(N, midGray(5), /*TrueClass=*/1, 50);
  EXPECT_TRUE(R2.AlreadyMisclassified);
}

TEST(KPixelRS, NameIncludesK) {
  KPixelRSConfig Config;
  Config.K = 3;
  EXPECT_EQ(KPixelRS(Config).name(), "Sparse-RS(k=3)");
}

//===----------------------------------------------------------------------===//
// Augmentation
//===----------------------------------------------------------------------===//

TEST(Augment, FlipHorizontalMirrors) {
  Image Img(2, 3);
  Img.setPixel(0, 0, Pixel{1, 0, 0});
  Img.setPixel(0, 2, Pixel{0, 0, 1});
  const Image Out = flipHorizontal(Img);
  EXPECT_FLOAT_EQ(Out.pixel(0, 0).B, 1.0f);
  EXPECT_FLOAT_EQ(Out.pixel(0, 2).R, 1.0f);
  EXPECT_FLOAT_EQ(Out.pixel(0, 1).R, Img.pixel(0, 1).R);
}

TEST(Augment, DoubleFlipIsIdentity) {
  const Image Img = gradientImage(5, 7);
  const Image Twice = flipHorizontal(flipHorizontal(Img));
  EXPECT_EQ(Twice.raw(), Img.raw());
}

TEST(Augment, TranslateShiftsContent) {
  Image Img(3, 3);
  Img.setPixel(1, 1, Pixel{1, 1, 1});
  const Image Out = translate(Img, 1, 0);
  EXPECT_FLOAT_EQ(Out.pixel(2, 1).R, 1.0f);
  EXPECT_FLOAT_EQ(Out.pixel(1, 1).R, 0.0f);
}

TEST(Augment, TranslateClampsEdges) {
  Image Img(2, 2);
  Img.setPixel(0, 0, Pixel{1, 0, 0});
  Img.setPixel(0, 1, Pixel{0, 1, 0});
  Img.setPixel(1, 0, Pixel{0, 0, 1});
  Img.setPixel(1, 1, Pixel{1, 1, 1});
  // Shift down by 1: the vacated top row replicates the original top row.
  const Image Out = translate(Img, 1, 0);
  EXPECT_FLOAT_EQ(Out.pixel(0, 0).R, 1.0f);
  EXPECT_FLOAT_EQ(Out.pixel(1, 0).R, 1.0f);
}

TEST(Augment, ZeroTranslateIsIdentity) {
  const Image Img = gradientImage(4, 4);
  EXPECT_EQ(translate(Img, 0, 0).raw(), Img.raw());
}

TEST(Augment, CutoutZeroesAPatch) {
  Image Img(8, 8);
  for (float &V : Img.raw())
    V = 1.0f;
  Rng R(3);
  cutout(Img, 3, R);
  size_t Zeros = 0;
  for (float V : Img.raw())
    Zeros += V == 0.0f;
  EXPECT_GT(Zeros, 0u);
  EXPECT_LE(Zeros, 3u * 3u * 3u);
  EXPECT_EQ(Zeros % 3, 0u) << "whole pixels are zeroed";
}

TEST(Augment, FullPolicyKeepsRangeAndShape) {
  AugmentConfig Config;
  Config.CutoutPatch = 2;
  Rng R(5);
  const Image Img = gradientImage(8, 8);
  for (int I = 0; I != 50; ++I) {
    const Image Out = augment(Img, Config, R);
    ASSERT_EQ(Out.height(), 8u);
    ASSERT_EQ(Out.width(), 8u);
    for (float V : Out.raw()) {
      ASSERT_GE(V, 0.0f);
      ASSERT_LE(V, 1.0f);
    }
  }
}

TEST(Augment, DeterministicGivenRngState) {
  AugmentConfig Config;
  Rng R1(9), R2(9);
  const Image Img = gradientImage(6, 6);
  EXPECT_EQ(augment(Img, Config, R1).raw(), augment(Img, Config, R2).raw());
}
