//===- tests/attacks/AttacksTest.cpp - Baseline attack tests ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/RandomPairSearch.h"
#include "attacks/SketchAttack.h"
#include "attacks/SparseRS.h"
#include "attacks/SuOPA.h"
#include "support/Trace.h"

#include "../JsonTestUtil.h"
#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

using namespace oppsla;
using namespace oppsla::test;

namespace {

/// Flips to class 1 whenever any pixel is more than 0.95 bright in all
/// channels (i.e. close to the white corner) — a fat target every attack
/// finds quickly.
FakeClassifier whitePixelVulnerable() {
  return FakeClassifier(2, [](const Image &X) {
    for (size_t I = 0; I != X.height(); ++I)
      for (size_t J = 0; J != X.width(); ++J) {
        const Pixel P = X.pixel(I, J);
        if (P.R > 0.95f && P.G > 0.95f && P.B > 0.95f)
          return std::vector<float>{0.1f, 0.9f};
      }
    return std::vector<float>{0.9f, 0.1f};
  });
}

Image midGray(size_t Side) {
  Image Img(Side, Side);
  for (float &V : Img.raw())
    V = 0.5f;
  return Img;
}

} // namespace

TEST(UntargetedMargin, Definition) {
  EXPECT_NEAR(untargetedMargin({0.7f, 0.2f, 0.1f}, 0), 0.5, 1e-6);
  EXPECT_NEAR(untargetedMargin({0.2f, 0.5f, 0.3f}, 0), -0.3, 1e-6);
  EXPECT_NEAR(untargetedMargin({0.5f, 0.5f}, 1), 0.0, 1e-6);
}

//===----------------------------------------------------------------------===//
// SketchAttack
//===----------------------------------------------------------------------===//

TEST(SketchAttack, AdaptsSketchResult) {
  FakeClassifier N = whitePixelVulnerable();
  SketchAttack A(allFalseProgram(), "test-sketch");
  const AttackResult R = A.attack(N, midGray(4), 0, 1000);
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(A.name(), "test-sketch");
  EXPECT_EQ(R.Perturbation, cornerPixel(7)) << "white corner flips";
  EXPECT_GT(R.Queries, 0u);
}

TEST(SketchAttack, DefaultNameIsOPPSLA) {
  SketchAttack A(allFalseProgram());
  EXPECT_EQ(A.name(), "OPPSLA");
}

//===----------------------------------------------------------------------===//
// SparseRS
//===----------------------------------------------------------------------===//

TEST(SparseRS, SucceedsOnFatTarget) {
  FakeClassifier N = whitePixelVulnerable();
  SparseRS A;
  const AttackResult R = A.attack(N, midGray(6), 0, 5000);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Perturbation, cornerPixel(7));
  EXPECT_LE(R.Queries, 5000u);
}

TEST(SparseRS, RespectsBudgetOnRobustTarget) {
  FakeClassifier N = robustClassifier();
  SparseRS A;
  const AttackResult R = A.attack(N, midGray(6), 0, 100);
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Queries, 100u);
}

TEST(SparseRS, DetectsAlreadyMisclassified) {
  FakeClassifier N = robustClassifier();
  SparseRS A;
  const AttackResult R = A.attack(N, midGray(4), /*TrueClass=*/1, 100);
  EXPECT_TRUE(R.Success);
  EXPECT_TRUE(R.AlreadyMisclassified);
  EXPECT_EQ(R.Queries, 1u);
}

TEST(SparseRS, MarginDescentFindsGradedTarget) {
  // Margin shrinks as the perturbed pixel approaches the image's top-left
  // corner; only (0,0) with the white corner flips. Random search must
  // exploit the gradient through its accept rule.
  FakeClassifier N(2, [](const Image &X) {
    float Best = 0.0f;
    for (size_t I = 0; I != X.height(); ++I)
      for (size_t J = 0; J != X.width(); ++J) {
        const Pixel P = X.pixel(I, J);
        if (P.R > 0.95f && P.G > 0.95f && P.B > 0.95f) {
          const float Dist = static_cast<float>(I + J);
          Best = std::max(Best, 1.0f / (1.0f + Dist));
        }
      }
    if (Best >= 0.99f)
      return std::vector<float>{0.2f, 0.8f};
    return std::vector<float>{0.6f - 0.2f * Best, 0.4f + 0.2f * Best};
  });
  SparseRS A(SparseRSConfig{/*Seed=*/7, /*ScheduleHorizon=*/500,
                            /*MinLocationProb=*/0.3});
  const AttackResult R = A.attack(N, midGray(8), 0, 20000);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Loc.Row, 0u);
  EXPECT_EQ(R.Loc.Col, 0u);
}

//===----------------------------------------------------------------------===//
// SuOPA
//===----------------------------------------------------------------------===//

TEST(SuOPA, MinimumQueriesIsPopulationPlusClean) {
  FakeClassifier N = robustClassifier();
  SuOPAConfig Config;
  Config.PopulationSize = 50;
  Config.MaxGenerations = 0;
  SuOPA A(Config);
  const AttackResult R = A.attack(N, midGray(6), 0, 10000);
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Queries, 51u) << "one clean query + one per individual";
}

TEST(SuOPA, FindsFatTargetDuringInitOrEvolution) {
  FakeClassifier N = whitePixelVulnerable();
  SuOPAConfig Config;
  Config.PopulationSize = 60;
  Config.MaxGenerations = 30;
  SuOPA A(Config);
  const AttackResult R = A.attack(N, midGray(6), 0, 50000);
  ASSERT_TRUE(R.Success);
  EXPECT_GT(R.Perturbation.R, 0.95f);
  EXPECT_GT(R.Perturbation.G, 0.95f);
  EXPECT_GT(R.Perturbation.B, 0.95f);
}

TEST(SuOPA, RespectsBudgetMidPopulation) {
  FakeClassifier N = robustClassifier();
  SuOPAConfig Config;
  Config.PopulationSize = 400;
  SuOPA A(Config);
  const AttackResult R = A.attack(N, midGray(6), 0, /*Budget=*/37);
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Queries, 37u);
}

TEST(SuOPA, DetectsAlreadyMisclassified) {
  FakeClassifier N = robustClassifier();
  SuOPA A;
  const AttackResult R = A.attack(N, midGray(4), 2, 100);
  EXPECT_TRUE(R.Success);
  EXPECT_TRUE(R.AlreadyMisclassified);
  EXPECT_EQ(R.Queries, 1u);
}

//===----------------------------------------------------------------------===//
// RandomPairSearch
//===----------------------------------------------------------------------===//

TEST(RandomPairSearch, ExhaustsCornerSpaceOnRobustTarget) {
  FakeClassifier N = robustClassifier();
  RandomPairSearch A;
  const AttackResult R = A.attack(N, midGray(4), 0, Attack::Unlimited);
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Queries, 4u * 4u * 8u + 1u);
}

TEST(RandomPairSearch, FindsFatTarget) {
  FakeClassifier N = whitePixelVulnerable();
  RandomPairSearch A;
  const AttackResult R = A.attack(N, midGray(4), 0, Attack::Unlimited);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Perturbation, cornerPixel(7));
}

TEST(RandomPairSearch, BudgetStopsSearch) {
  FakeClassifier N = robustClassifier();
  RandomPairSearch A;
  const AttackResult R = A.attack(N, midGray(4), 0, 9);
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Queries, 9u);
}

//===----------------------------------------------------------------------===//
// Cross-attack property: query accounting under a common budget
//===----------------------------------------------------------------------===//

class AttackBudgetSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AttackBudgetSweep, NoAttackEverExceedsItsBudget) {
  const uint64_t Budget = GetParam();
  const Image X = midGray(5);
  SketchAttack Sk(paperExampleProgram());
  SparseRS Rs;
  SuOPA De;
  RandomPairSearch Rp;
  for (Attack *A : {static_cast<Attack *>(&Sk), static_cast<Attack *>(&Rs),
                    static_cast<Attack *>(&De),
                    static_cast<Attack *>(&Rp)}) {
    FakeClassifier N = robustClassifier();
    const AttackResult R = A->attack(N, X, 0, Budget);
    EXPECT_LE(R.Queries, Budget) << A->name();
    EXPECT_FALSE(R.Success) << A->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, AttackBudgetSweep,
                         ::testing::Values(1, 2, 10, 100, 400));

//===----------------------------------------------------------------------===//
// Telemetry: every Attack::attack() call is wrapped in a trace span
//===----------------------------------------------------------------------===//

TEST(AttackTelemetry, EmitsOneSpanPerAttack) {
  const std::string Path =
      (std::filesystem::temp_directory_path() / "oppsla_attack_span.jsonl")
          .string();
  ASSERT_TRUE(telemetry::TraceWriter::instance().open(Path));

  SparseRS Rs;
  SketchAttack Sk(allFalseProgram());
  for (Attack *A :
       {static_cast<Attack *>(&Rs), static_cast<Attack *>(&Sk)}) {
    FakeClassifier N = robustClassifier();
    A->attack(N, midGray(4), 0, 16);
  }
  telemetry::TraceWriter::instance().close();

  std::ifstream In(Path);
  std::string Line;
  size_t Begins = 0, Ends = 0, Queries = 0;
  std::vector<std::map<std::string, std::string>> EndEvents;
  while (std::getline(In, Line)) {
    std::map<std::string, std::string> F;
    ASSERT_TRUE(oppsla::test::parseJsonObject(Line, F)) << Line;
    if (F["type"] == "attack_begin")
      ++Begins;
    else if (F["type"] == "attack_end") {
      ++Ends;
      EndEvents.push_back(std::move(F));
    } else if (F["type"] == "query")
      ++Queries;
  }
  EXPECT_EQ(Begins, 2u);
  ASSERT_EQ(Ends, 2u);
  EXPECT_GT(Queries, 0u) << "per-query events appear inside the spans";
  for (const auto &E : EndEvents) {
    EXPECT_EQ(E.at("outcome"), "failure");
    const uint64_t Q = std::stoull(E.at("queries"));
    EXPECT_GT(Q, 0u);
    EXPECT_LE(Q, 16u) << "span query count respects the budget";
    EXPECT_TRUE(E.count("duration_us"));
  }
  std::remove(Path.c_str());
}
