//===- tests/attacks/PrefixPropertyTest.cpp - Budget prefix property ----------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The evaluation harness derives the whole success-rate-vs-budget curve
// from ONE attack run per image (eval/Evaluation.h): if a deterministic
// attack succeeds after q queries under budget B, it succeeds identically
// under any budget in [q, B], and fails under budgets < q. These tests
// pin that prefix property for every attack implementation.
//
//===----------------------------------------------------------------------===//

#include "attacks/RandomPairSearch.h"
#include "attacks/SketchAttack.h"
#include "attacks/SparseRS.h"
#include "attacks/SuOPA.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

using namespace oppsla;
using namespace oppsla::test;

namespace {

Image midGray(size_t Side) {
  Image Img(Side, Side);
  for (float &V : Img.raw())
    V = 0.5f;
  return Img;
}

/// Classifier with a moderately hidden vulnerability so attacks need a
/// nontrivial number of queries.
FakeClassifier hiddenTarget() {
  return FakeClassifier(2, [](const Image &X) {
    const Pixel P = X.pixel(1, 3);
    if (P.R > 0.95f && P.G < 0.05f && P.B > 0.95f) // magenta corner
      return std::vector<float>{0.2f, 0.8f};
    return std::vector<float>{0.9f, 0.1f};
  });
}

/// Factory type: builds a fresh attack with identical RNG state, so
/// reruns replay the same query sequence.
using AttackFactory = std::function<std::unique_ptr<Attack>()>;

void checkPrefixProperty(const AttackFactory &Make) {
  const Image X = midGray(5);
  FakeClassifier N1 = hiddenTarget();
  const AttackResult Full = Make()->attack(N1, X, 0, 100000);
  ASSERT_TRUE(Full.Success) << Make()->name();
  const uint64_t Q = Full.Queries;
  ASSERT_GT(Q, 1u);

  // Exactly-enough budget: identical outcome.
  FakeClassifier N2 = hiddenTarget();
  const AttackResult Exact = Make()->attack(N2, X, 0, Q);
  EXPECT_TRUE(Exact.Success);
  EXPECT_EQ(Exact.Queries, Q);
  EXPECT_EQ(Exact.Loc.Row, Full.Loc.Row);
  EXPECT_EQ(Exact.Loc.Col, Full.Loc.Col);

  // One query short: failure, with the budget fully spent.
  FakeClassifier N3 = hiddenTarget();
  const AttackResult Short = Make()->attack(N3, X, 0, Q - 1);
  EXPECT_FALSE(Short.Success);
  EXPECT_EQ(Short.Queries, Q - 1);

  // A larger budget changes nothing.
  FakeClassifier N4 = hiddenTarget();
  const AttackResult Large = Make()->attack(N4, X, 0, Q + 1234);
  EXPECT_TRUE(Large.Success);
  EXPECT_EQ(Large.Queries, Q);
}

} // namespace

TEST(PrefixProperty, SketchAttack) {
  checkPrefixProperty([] {
    return std::make_unique<SketchAttack>(paperExampleProgram());
  });
}

TEST(PrefixProperty, SketchAttackAllTrue) {
  checkPrefixProperty(
      [] { return std::make_unique<SketchAttack>(allTrueProgram()); });
}

TEST(PrefixProperty, SparseRS) {
  checkPrefixProperty([] {
    return std::make_unique<SparseRS>(SparseRSConfig{/*Seed=*/77,
                                                     /*Horizon=*/1000,
                                                     /*MinLocProb=*/0.2});
  });
}

TEST(PrefixProperty, SuOPA) {
  SuOPAConfig Config;
  // DE on this flat fitness landscape only succeeds for lucky seeds; this
  // one succeeds after a few hundred queries under the per-run RNG stream
  // (Rng::deriveRunSeed). The test pins the prefix property, not the seed.
  Config.Seed = 2;
  Config.PopulationSize = 30;
  Config.MaxGenerations = 200;
  checkPrefixProperty(
      [Config] { return std::make_unique<SuOPA>(Config); });
}

TEST(PrefixProperty, RandomPairSearch) {
  checkPrefixProperty(
      [] { return std::make_unique<RandomPairSearch>(/*Seed=*/5); });
}
