//===- tests/wire/WireTest.cpp - Binary wire format tests ---------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Round-trips the OPWF wire format and then attacks it: truncation at
// every byte boundary, a flipped CRC, a wrong magic, a wrong endianness
// marker, an unsupported version, trailing garbage, and a run record with
// a bogus payload length. Every corruption must fail loudly with a
// descriptive error and must never leave partial contents in the output.
//
//===----------------------------------------------------------------------===//

#include "wire/Wire.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace oppsla;
using namespace oppsla::wire;
using test::randomImage;

namespace {

/// Little-endian u32 append, mirroring the writer (tests build corrupt
/// records by hand with it).
void putU32(std::string &Out, uint32_t V) {
  Out.push_back(static_cast<char>(V & 0xFF));
  Out.push_back(static_cast<char>((V >> 8) & 0xFF));
  Out.push_back(static_cast<char>((V >> 16) & 0xFF));
  Out.push_back(static_cast<char>((V >> 24) & 0xFF));
}

std::string header(uint32_t NumRecords, uint32_t Endian = WireEndianMarker,
                   uint32_t Version = WireVersion,
                   const char *Magic = "OPWF") {
  std::string Out(Magic, 4);
  putU32(Out, Endian);
  putU32(Out, Version);
  putU32(Out, NumRecords);
  putU32(Out, 0);
  return Out;
}

/// One well-formed record with a correct CRC (so corruption tests can
/// isolate the field they actually target).
std::string record(uint32_t Type, const std::string &Payload) {
  std::string Head;
  putU32(Head, Type);
  putU32(Head, static_cast<uint32_t>(Payload.size()));
  std::string Out = Head + Payload;
  putU32(Out, wire::crc32(Payload.data(), Payload.size(),
                           wire::crc32(Head.data(), Head.size())));
  return Out;
}

/// A representative artifact: spec + out-of-order runs + program + image.
std::string sampleArtifact(WireContents *Expect = nullptr) {
  WireBuilder B;
  B.addJobSpecJson("{\"kind\":\"eval\",\"seed\":7}");
  const WireRun R1{4, 1, 1, 321};
  const WireRun R2{2, 0, 0, 1000};
  const WireRun R3{9, 2, 2, 0};
  B.addRun(R1);
  B.addRun(R2);
  B.addRun(R3);
  B.addProgram("if region(0,0,4,4) then pixel(1,1)");
  B.addImage(randomImage(4, 4, 0xF00D));
  if (Expect) {
    Expect->JobSpecJson = "{\"kind\":\"eval\",\"seed\":7}";
    Expect->Runs = {R1, R2, R3};
    Expect->Programs = {"if region(0,0,4,4) then pixel(1,1)"};
    Expect->Images = {randomImage(4, 4, 0xF00D)};
  }
  return B.finish();
}

/// Parses expecting failure; checks the error mentions \p Needle and the
/// output kept its sentinel contents (all-or-nothing contract).
void expectRejects(const std::string &Bytes, const std::string &Needle) {
  WireContents Out;
  Out.JobSpecJson = "SENTINEL";
  Out.Runs = {WireRun{99, 99, 1, 99}};
  std::string Error;
  EXPECT_FALSE(parseWire(Bytes, Out, Error));
  EXPECT_NE(Error.find(Needle), std::string::npos)
      << "error was: " << Error;
  EXPECT_EQ(Out.JobSpecJson, "SENTINEL") << "partial contents leaked";
  ASSERT_EQ(Out.Runs.size(), 1u) << "partial contents leaked";
  EXPECT_EQ(Out.Runs[0].Index, 99u);
}

} // namespace

TEST(Wire, Crc32KnownAnswer) {
  // The standard IEEE 802.3 check value for "123456789".
  const char *S = "123456789";
  EXPECT_EQ(wire::crc32(S, 9), 0xCBF43926u);
  // Seeded continuation equals one-shot over the concatenation.
  EXPECT_EQ(wire::crc32(S + 4, 5, wire::crc32(S, 4)),
            wire::crc32(S, 9));
}

TEST(Wire, RoundTripAllRecordTypes) {
  WireContents Expect;
  const std::string Bytes = sampleArtifact(&Expect);

  WireContents Got;
  std::string Error;
  ASSERT_TRUE(parseWire(Bytes, Got, Error)) << Error;
  EXPECT_EQ(Got.JobSpecJson, Expect.JobSpecJson);
  ASSERT_EQ(Got.Runs.size(), 3u);
  EXPECT_EQ(Got.Runs, Expect.Runs); // insertion order preserved
  ASSERT_EQ(Got.Programs.size(), 1u);
  EXPECT_EQ(Got.Programs[0], Expect.Programs[0]);
  ASSERT_EQ(Got.Images.size(), 1u);
  EXPECT_EQ(Got.Images[0].height(), 4u);
  EXPECT_EQ(Got.Images[0].width(), 4u);
  EXPECT_EQ(Got.Images[0].raw(), Expect.Images[0].raw());
}

TEST(Wire, EmptyArtifactRoundTrips) {
  WireBuilder B;
  const std::string Bytes = B.finish();
  EXPECT_EQ(Bytes.size(), WireHeaderBytes);
  WireContents Got;
  std::string Error;
  ASSERT_TRUE(parseWire(Bytes, Got, Error)) << Error;
  EXPECT_TRUE(Got.JobSpecJson.empty());
  EXPECT_TRUE(Got.Runs.empty());
}

TEST(Wire, RebuildIsByteIdentical) {
  // The byte-identity contract behind checkpoint/resume: two builders fed
  // the same records produce the same bytes.
  EXPECT_EQ(sampleArtifact(), sampleArtifact());
}

TEST(Wire, TruncationAtEveryBoundaryFails) {
  const std::string Bytes = sampleArtifact();
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    WireContents Out;
    Out.JobSpecJson = "SENTINEL";
    std::string Error;
    EXPECT_FALSE(parseWire(Bytes.substr(0, Len), Out, Error))
        << "a " << Len << "-byte prefix of a " << Bytes.size()
        << "-byte artifact parsed";
    EXPECT_FALSE(Error.empty()) << "prefix length " << Len;
    EXPECT_EQ(Out.JobSpecJson, "SENTINEL")
        << "partial contents leaked at prefix length " << Len;
  }
}

TEST(Wire, FlippedCrcByteFails) {
  std::string Bytes = sampleArtifact();
  Bytes.back() ^= 0x01; // last byte is the final record's CRC
  expectRejects(Bytes, "CRC mismatch");
}

TEST(Wire, FlippedPayloadByteFails) {
  std::string Bytes = sampleArtifact();
  // Corrupt a payload byte of the first record (spec JSON text), well past
  // the header.
  Bytes[WireHeaderBytes + 8 + 2] ^= 0x40;
  expectRejects(Bytes, "CRC mismatch");
}

TEST(Wire, BadMagicFails) {
  std::string Bytes = sampleArtifact();
  Bytes[0] = 'X';
  expectRejects(Bytes, "bad magic");
}

TEST(Wire, WrongEndianMarkerFails) {
  // A big-endian writer would emit the marker byte-reversed; the reader
  // must call that out rather than mis-decode every integer.
  std::string Bytes = sampleArtifact();
  std::swap(Bytes[4], Bytes[7]);
  std::swap(Bytes[5], Bytes[6]);
  expectRejects(Bytes, "endianness");
}

TEST(Wire, UnsupportedVersionFails) {
  std::string Bytes = sampleArtifact();
  Bytes[8] = 2; // version field, little-endian low byte
  expectRejects(Bytes, "unsupported version 2");
}

TEST(Wire, TrailingBytesFail) {
  std::string Bytes = sampleArtifact();
  Bytes += "garbage";
  expectRejects(Bytes, "trailing");
}

TEST(Wire, RunPayloadWithWrongSizeFails) {
  // A record whose CRC is valid but whose run payload is 16 bytes instead
  // of 17 — the structural check must fire even when the checksum passes.
  const std::string Bytes =
      header(1) +
      record(static_cast<uint32_t>(WireRecordType::Run),
             std::string(16, '\0'));
  expectRejects(Bytes, "16 bytes, expected 17");
}

TEST(Wire, UnknownRecordTypeFails) {
  const std::string Bytes = header(1) + record(77, "whatever");
  expectRejects(Bytes, "unknown record type");
}

TEST(Wire, FileRoundTripAndAtomicWrite) {
  const std::string Path = ::testing::TempDir() + "/wiretest_artifact.bin";
  std::remove(Path.c_str());

  WireContents Expect;
  const std::string Bytes = sampleArtifact(&Expect);
  std::string Error;
  ASSERT_TRUE(writeFileAtomic(Path, Bytes, Error)) << Error;

  WireContents Got;
  ASSERT_TRUE(readWireFile(Path, Got, Error)) << Error;
  EXPECT_EQ(Got.Runs, Expect.Runs);
  std::remove(Path.c_str());

  // A missing file is a read error that names the path.
  EXPECT_FALSE(readWireFile(Path, Got, Error));
  EXPECT_NE(Error.find(Path), std::string::npos) << Error;
}

TEST(Wire, RunsToJsonlSortsAndMatchesRunLogShape) {
  // Out-of-order completion (a resume interleaving) must render the same
  // JSONL as the offline exporter: sorted, positional image numbering.
  std::vector<WireRun> Runs = {{7, 1, 0, 12}, {3, 0, 1, 4}, {5, 2, 2, 0}};
  EXPECT_EQ(runsToJsonl(Runs),
            "{\"image\":0,\"label\":0,\"outcome\":\"success\","
            "\"queries\":4}\n"
            "{\"image\":1,\"label\":2,\"outcome\":\"discarded\","
            "\"queries\":0}\n"
            "{\"image\":2,\"label\":1,\"outcome\":\"failure\","
            "\"queries\":12}\n");
}
