//===- tests/GradCheck.h - Numerical gradient checking ----------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Central-difference gradient checking for Layer implementations. We
/// define a scalar loss L = sum_i w_i * out_i with fixed pseudo-random
/// weights w, compute analytic input/parameter gradients via backward(w),
/// and compare against (L(x+eps) - L(x-eps)) / (2 eps).
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_TESTS_GRADCHECK_H
#define OPPSLA_TESTS_GRADCHECK_H

#include "nn/Layer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace oppsla::test {

/// Weighted sum of a forward pass; the scalar loss for gradient checks.
inline double weightedLoss(Layer &L, const Tensor &In,
                           const std::vector<float> &W) {
  Tensor Out = L.forward(In, /*Train=*/true);
  EXPECT_EQ(Out.numel(), W.size());
  double Acc = 0.0;
  for (size_t I = 0; I != Out.numel(); ++I)
    Acc += static_cast<double>(W[I]) * Out[I];
  return Acc;
}

/// Checks input and parameter gradients of \p L at input \p In.
///
/// \p Eps is the finite-difference step; \p Tol the allowed mismatch,
/// evaluated as |analytic - numeric| <= Tol * max(1, |analytic|).
inline void checkGradients(Layer &L, Tensor In, double Eps = 1e-2,
                           double Tol = 2e-2, uint64_t Seed = 7) {
  // Fixed loss weights (avoid all-ones: it hides sign errors that cancel).
  Tensor Probe = L.forward(In, /*Train=*/true);
  Rng R(Seed);
  std::vector<float> W(Probe.numel());
  for (float &V : W)
    V = static_cast<float>(R.uniform(-1.0, 1.0));

  // Analytic gradients.
  std::vector<ParamRef> Params;
  L.collectParams("p", Params);
  zeroGrads(Params);
  L.forward(In, /*Train=*/true);
  Tensor GradOut(Probe.shape());
  for (size_t I = 0; I != W.size(); ++I)
    GradOut[I] = W[I];
  Tensor GradIn = L.backward(GradOut);
  ASSERT_EQ(GradIn.numel(), In.numel());

  auto Compare = [&](double Analytic, double Numeric, const char *What,
                     size_t Index) {
    const double Scale = std::max(1.0, std::fabs(Analytic));
    EXPECT_NEAR(Analytic, Numeric, Tol * Scale)
        << What << " gradient mismatch at flat index " << Index;
  };

  // Input gradient, checked on a strided subset for speed.
  const size_t InStride = std::max<size_t>(1, In.numel() / 24);
  for (size_t I = 0; I < In.numel(); I += InStride) {
    const float Orig = In[I];
    In[I] = Orig + static_cast<float>(Eps);
    const double Plus = weightedLoss(L, In, W);
    In[I] = Orig - static_cast<float>(Eps);
    const double Minus = weightedLoss(L, In, W);
    In[I] = Orig;
    Compare(GradIn[I], (Plus - Minus) / (2 * Eps), "input", I);
  }

  // Parameter gradients.
  for (ParamRef &P : Params) {
    Tensor &V = *P.Value;
    const size_t Stride = std::max<size_t>(1, V.numel() / 16);
    for (size_t I = 0; I < V.numel(); I += Stride) {
      const float Orig = V[I];
      V[I] = Orig + static_cast<float>(Eps);
      const double Plus = weightedLoss(L, In, W);
      V[I] = Orig - static_cast<float>(Eps);
      const double Minus = weightedLoss(L, In, W);
      V[I] = Orig;
      Compare((*P.Grad)[I], (Plus - Minus) / (2 * Eps), P.Name.c_str(), I);
    }
  }
}

} // namespace oppsla::test

#endif // OPPSLA_TESTS_GRADCHECK_H
