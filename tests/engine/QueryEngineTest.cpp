//===- tests/engine/QueryEngineTest.cpp - Query engine unit tests ------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/QueryEngine.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace oppsla;
using test::FakeClassifier;
using test::randomImage;

namespace {

/// FakeClassifier that also records every physical batch submission size.
class RecordingClassifier : public FakeClassifier {
public:
  using FakeClassifier::FakeClassifier;

  std::vector<std::vector<float>> scoresBatch(
      std::span<const Image> Imgs) override {
    BatchSizes.push_back(Imgs.size());
    return FakeClassifier::scoresBatch(Imgs);
  }

  std::vector<size_t> BatchSizes;
};

/// Deterministic scores derived from the image's first pixel, so every
/// distinct image has distinct scores and correctness is checkable.
RecordingClassifier makeInner() {
  return RecordingClassifier(3, [](const Image &Img) {
    const float V = Img.raw()[0];
    return std::vector<float>{V, 1.0f - V, 0.5f * V};
  });
}

QueryEngineConfig config(size_t Batch, size_t CacheCap, size_t Threads = 1) {
  QueryEngineConfig C;
  C.BatchSize = Batch;
  C.CacheCapacity = CacheCap;
  C.Threads = Threads;
  return C;
}

std::vector<Image> distinctImages(size_t N) {
  std::vector<Image> Out;
  Out.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Out.push_back(randomImage(4, 4, 0x900 + I));
  return Out;
}

} // namespace

TEST(QueryEngine, LogicalVsPhysicalSplit) {
  RecordingClassifier Inner = makeInner();
  QueryEngine Engine(Inner, config(8, 64));
  const Image A = randomImage(4, 4, 1);

  const std::vector<float> S1 = Engine.scores(A);
  const std::vector<float> S2 = Engine.scores(A);
  EXPECT_EQ(S1, S2);
  // Both queries count logically; only the first paid a forward.
  EXPECT_EQ(Engine.logicalQueries(), 2u);
  EXPECT_EQ(Engine.physicalForwards(), 1u);
  EXPECT_EQ(Inner.calls(), 1u);
  EXPECT_EQ(Engine.cache().hits(), 1u);
}

TEST(QueryEngine, BatchChunksByConfiguredSize) {
  RecordingClassifier Inner = makeInner();
  QueryEngine Engine(Inner, config(8, 64));
  const std::vector<Image> Imgs = distinctImages(20);

  const auto Out = Engine.scoresBatch(std::span<const Image>(Imgs));
  ASSERT_EQ(Out.size(), 20u);
  for (size_t I = 0; I != Imgs.size(); ++I)
    EXPECT_EQ(Out[I], Inner.scores(Imgs[I])) << "index " << I;

  // 20 unique misses -> chunks of 8, 8, 4.
  EXPECT_EQ(Engine.logicalQueries(), 20u);
  EXPECT_EQ(Engine.physicalForwards(), 20u);
  ASSERT_EQ(Inner.BatchSizes.size(), 3u);
  EXPECT_EQ(Inner.BatchSizes[0], 8u);
  EXPECT_EQ(Inner.BatchSizes[1], 8u);
  EXPECT_EQ(Inner.BatchSizes[2], 4u);
}

TEST(QueryEngine, BatchDeduplicatesIdenticalImages) {
  RecordingClassifier Inner = makeInner();
  QueryEngine Engine(Inner, config(8, 64));
  const Image A = randomImage(4, 4, 1);
  const Image B = randomImage(4, 4, 2);
  const std::vector<Image> Imgs{A, B, A, A, B};

  const auto Out = Engine.scoresBatch(std::span<const Image>(Imgs));
  EXPECT_EQ(Out[0], Out[2]);
  EXPECT_EQ(Out[0], Out[3]);
  EXPECT_EQ(Out[1], Out[4]);
  // Five logical queries, two physical forwards.
  EXPECT_EQ(Engine.logicalQueries(), 5u);
  EXPECT_EQ(Engine.physicalForwards(), 2u);
}

TEST(QueryEngine, PrefetchWarmsCacheWithoutLogicalCharge) {
  RecordingClassifier Inner = makeInner();
  QueryEngine Engine(Inner, config(4, 64));
  ASSERT_TRUE(Engine.prefetchable());
  const std::vector<Image> Imgs = distinctImages(6);

  Engine.prefetch(Imgs);
  EXPECT_EQ(Engine.logicalQueries(), 0u);
  EXPECT_EQ(Engine.physicalForwards(), 6u);

  // Subsequent queries are all hits: no further inner calls.
  const size_t CallsAfterPrefetch = Inner.calls();
  for (const Image &Img : Imgs)
    EXPECT_EQ(Engine.scores(Img), Inner.scores(Img));
  EXPECT_EQ(Engine.physicalForwards(), 6u);
  EXPECT_EQ(Engine.logicalQueries(), 6u);
  // Inner.scores above accounts for the verification queries only.
  EXPECT_EQ(Inner.calls(), CallsAfterPrefetch + Imgs.size());

  // Prefetching already-resident images is free.
  Inner.BatchSizes.clear();
  Engine.prefetch(Imgs);
  EXPECT_TRUE(Inner.BatchSizes.empty());
  EXPECT_EQ(Engine.physicalForwards(), 6u);
}

TEST(QueryEngine, NoCacheDisablesPrefetchAndMemoization) {
  RecordingClassifier Inner = makeInner();
  QueryEngine Engine(Inner, config(4, 0));
  EXPECT_FALSE(Engine.prefetchable());

  const std::vector<Image> Imgs = distinctImages(3);
  Engine.prefetch(Imgs);
  EXPECT_EQ(Inner.calls(), 0u);

  const Image A = Imgs[0];
  (void)Engine.scores(A);
  (void)Engine.scores(A);
  EXPECT_EQ(Engine.logicalQueries(), 2u);
  EXPECT_EQ(Engine.physicalForwards(), 2u); // no memoization
}

TEST(QueryEngine, BatchSizeOneStillBatchesLogically) {
  RecordingClassifier Inner = makeInner();
  QueryEngine Engine(Inner, config(1, 64));
  const std::vector<Image> Imgs = distinctImages(3);
  const auto Out = Engine.scoresBatch(std::span<const Image>(Imgs));
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Engine.logicalQueries(), 3u);
  // Chunk size 1: three single-image physical submissions.
  ASSERT_EQ(Inner.BatchSizes.size(), 3u);
  for (size_t S : Inner.BatchSizes)
    EXPECT_EQ(S, 1u);
}

TEST(QueryEngine, ThreadedForwardMatchesSerial) {
  RecordingClassifier SerialInner = makeInner();
  QueryEngine Serial(SerialInner, config(4, 0));
  RecordingClassifier ThreadedInner = makeInner();
  QueryEngine Threaded(ThreadedInner, config(4, 0, 4));

  const std::vector<Image> Imgs = distinctImages(23);
  const auto A = Serial.scoresBatch(std::span<const Image>(Imgs));
  const auto B = Threaded.scoresBatch(std::span<const Image>(Imgs));
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_EQ(A[I], B[I]) << "index " << I;
}

TEST(QueryEngine, CloneIsIndependent) {
  RecordingClassifier Inner = makeInner();
  QueryEngine Engine(Inner, config(8, 64));
  const Image A = randomImage(4, 4, 1);
  (void)Engine.scores(A);

  std::unique_ptr<Classifier> CloneP = Engine.clone();
  ASSERT_NE(CloneP, nullptr);
  auto *Clone = dynamic_cast<QueryEngine *>(CloneP.get());
  ASSERT_NE(Clone, nullptr);
  // Fresh counters and cache; same config.
  EXPECT_EQ(Clone->logicalQueries(), 0u);
  EXPECT_EQ(Clone->cache().size(), 0u);
  EXPECT_EQ(Clone->config().BatchSize, 8u);
  EXPECT_EQ(Clone->scores(A), Engine.scores(A));
  // The clone queried its own inner copy, not the original.
  EXPECT_EQ(Inner.calls(), 1u);
}

TEST(QueryEngine, CloneSharesCacheWhenConfigured) {
  // The serve-mode pooling knob: with ShareCacheOnClone, clones reuse the
  // master's ScoreCache, so an image scored by one engine is a hit (not a
  // physical forward) in another. Logical query counters stay per-clone.
  RecordingClassifier Inner = makeInner();
  QueryEngineConfig C = config(8, 64);
  C.ShareCacheOnClone = true;
  QueryEngine Engine(Inner, C);
  const Image A = randomImage(4, 4, 1);
  (void)Engine.scores(A);
  ASSERT_EQ(Engine.physicalForwards(), 1u);

  std::unique_ptr<Classifier> CloneP = Engine.clone();
  auto *Clone = dynamic_cast<QueryEngine *>(CloneP.get());
  ASSERT_NE(Clone, nullptr);
  EXPECT_EQ(Clone->cache().size(), 1u) << "clone must see the shared cache";
  EXPECT_EQ(Clone->scores(A), Engine.scores(A));
  EXPECT_EQ(Clone->physicalForwards(), 0u)
      << "the shared cache must have absorbed the clone's query";
  EXPECT_EQ(Clone->logicalQueries(), 1u) << "logical counters stay per-clone";

  // New entries flow both ways.
  const Image B = randomImage(4, 4, 2);
  (void)Clone->scores(B);
  EXPECT_EQ(Engine.scores(B), Inner.scores(B));
  EXPECT_EQ(Engine.physicalForwards(), 1u)
      << "the master must hit the entry the clone inserted";

  // Without the flag the clone starts with a fresh, empty cache.
  QueryEngine Fresh(Inner, config(8, 64));
  (void)Fresh.scores(A);
  auto FreshCloneP = Fresh.clone();
  auto *FreshClone = dynamic_cast<QueryEngine *>(FreshCloneP.get());
  ASSERT_NE(FreshClone, nullptr);
  EXPECT_EQ(FreshClone->cache().size(), 0u);
}

TEST(QueryEngine, CacheCapacityBoundsResidency) {
  RecordingClassifier Inner = makeInner();
  QueryEngine Engine(Inner, config(8, 4));
  const std::vector<Image> Imgs = distinctImages(10);
  (void)Engine.scoresBatch(std::span<const Image>(Imgs));
  EXPECT_LE(Engine.cache().size(), 4u);
}
