//===- tests/engine/ScoreCacheTest.cpp - LRU score cache unit tests ----------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/ScoreCache.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace oppsla;
using test::randomImage;

namespace {

std::vector<float> scoresFor(float Tag) { return {Tag, 1.0f - Tag}; }

} // namespace

TEST(ScoreCache, MissThenVerifiedHit) {
  ScoreCache Cache(4);
  const Image A = randomImage(4, 4, 1);
  std::vector<float> Out;
  EXPECT_FALSE(Cache.lookup(A, A.contentHash(), Out));
  EXPECT_EQ(Cache.misses(), 1u);

  Cache.insert(A, A.contentHash(), scoresFor(0.25f));
  ASSERT_TRUE(Cache.lookup(A, A.contentHash(), Out));
  EXPECT_EQ(Out, scoresFor(0.25f));
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(ScoreCache, HashCollisionVerifiesBytesAndMisses) {
  ScoreCache Cache(4);
  const Image A = randomImage(4, 4, 1);
  const Image B = randomImage(4, 4, 2); // different bytes
  const uint64_t SharedHash = 0xdeadbeefULL;

  Cache.insert(A, SharedHash, scoresFor(0.1f));
  std::vector<float> Out;
  // B presents the same hash but different bytes: counted as a collision
  // and a miss, never a wrong answer.
  EXPECT_FALSE(Cache.lookup(B, SharedHash, Out));
  EXPECT_EQ(Cache.collisions(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);

  // Inserting B under the same hash replaces the entry; A now misses.
  Cache.insert(B, SharedHash, scoresFor(0.2f));
  EXPECT_EQ(Cache.size(), 1u);
  ASSERT_TRUE(Cache.lookup(B, SharedHash, Out));
  EXPECT_EQ(Out, scoresFor(0.2f));
  EXPECT_FALSE(Cache.lookup(A, SharedHash, Out));
}

TEST(ScoreCache, LruEvictionOrder) {
  ScoreCache Cache(2);
  const Image A = randomImage(4, 4, 1);
  const Image B = randomImage(4, 4, 2);
  const Image C = randomImage(4, 4, 3);
  Cache.insert(A, A.contentHash(), scoresFor(0.1f));
  Cache.insert(B, B.contentHash(), scoresFor(0.2f));

  // Touch A so B becomes least recently used.
  std::vector<float> Out;
  ASSERT_TRUE(Cache.lookup(A, A.contentHash(), Out));

  Cache.insert(C, C.contentHash(), scoresFor(0.3f));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_TRUE(Cache.contains(A, A.contentHash()));
  EXPECT_FALSE(Cache.contains(B, B.contentHash())); // evicted
  EXPECT_TRUE(Cache.contains(C, C.contentHash()));
}

TEST(ScoreCache, CapacityZeroDisablesEverything) {
  ScoreCache Cache(0);
  EXPECT_FALSE(Cache.enabled());
  const Image A = randomImage(4, 4, 1);
  Cache.insert(A, A.contentHash(), scoresFor(0.5f));
  std::vector<float> Out;
  EXPECT_FALSE(Cache.lookup(A, A.contentHash(), Out));
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(ScoreCache, ContainsDoesNotPromote) {
  ScoreCache Cache(2);
  const Image A = randomImage(4, 4, 1);
  const Image B = randomImage(4, 4, 2);
  const Image C = randomImage(4, 4, 3);
  Cache.insert(A, A.contentHash(), scoresFor(0.1f));
  Cache.insert(B, B.contentHash(), scoresFor(0.2f));
  // contains() must not refresh A's recency: A is still LRU...
  EXPECT_TRUE(Cache.contains(A, A.contentHash()));
  Cache.insert(C, C.contentHash(), scoresFor(0.3f));
  // ...so it is the one evicted.
  EXPECT_FALSE(Cache.contains(A, A.contentHash()));
  EXPECT_TRUE(Cache.contains(B, B.contentHash()));
}

TEST(ScoreCache, ClearKeepsStats) {
  ScoreCache Cache(4);
  const Image A = randomImage(4, 4, 1);
  Cache.insert(A, A.contentHash(), scoresFor(0.1f));
  std::vector<float> Out;
  ASSERT_TRUE(Cache.lookup(A, A.contentHash(), Out));
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_FALSE(Cache.lookup(A, A.contentHash(), Out));
}

TEST(ScoreCache, ShapeMismatchIsNotAHit) {
  ScoreCache Cache(4);
  // Same raw float contents, different shape: must not verify.
  Image A(2, 3), B(3, 2);
  for (size_t I = 0; I != A.raw().size(); ++I) {
    A.raw()[I] = 0.5f;
    B.raw()[I] = 0.5f;
  }
  const uint64_t SharedHash = 42;
  Cache.insert(A, SharedHash, scoresFor(0.1f));
  std::vector<float> Out;
  EXPECT_FALSE(Cache.lookup(B, SharedHash, Out));
  EXPECT_EQ(Cache.collisions(), 1u);
}
