# Drives `oppsla_bench gate` against the synthetic fixtures and asserts
# the sentinel's contract: exit code 0/1 per the manifest's rules, and a
# failure report that names the offending <bench>.<metric>.
#
# Inputs: GATE (oppsla_bench binary), FIXTURES (tests/gate/fixtures dir),
# MODE (pass | regress | drift).
if(MODE STREQUAL "pass")
  # Three repeats: 880 / 980 / 1010 images/sec. The first repeat alone is
  # 12% under baseline and would fail — the median (980) must absorb that
  # noise and pass. This is the median-of-N rule doing its job.
  set(ARTIFACTS
    ${FIXTURES}/run_pass_r0.json
    ${FIXTURES}/run_pass_r1.json
    ${FIXTURES}/run_pass_r2.json)
  set(WANT_RC 0)
  set(WANT_IN_REPORT "gate: PASS")
elseif(MODE STREQUAL "regress")
  # 850 images/sec vs a 1000 baseline under a 10% tolerance: fail, and the
  # report must name the throughput metric.
  set(ARTIFACTS ${FIXTURES}/run_throughput_regress.json)
  set(WANT_RC 1)
  set(WANT_IN_REPORT "gate_fixture.images_per_sec")
elseif(MODE STREQUAL "drift")
  # avg_queries moved 42.5 -> 77 under an exact-match rule: attack results
  # are pure functions of (seed, image), so any drift is a correctness
  # change, not noise.
  set(ARTIFACTS ${FIXTURES}/run_avgqueries_drift.json)
  set(WANT_RC 1)
  set(WANT_IN_REPORT "gate_fixture.avg_queries")
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()

execute_process(
  COMMAND ${GATE} gate --baselines ${FIXTURES} ${ARTIFACTS}
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL ${WANT_RC})
  message(FATAL_ERROR
    "gate exited ${RC}, expected ${WANT_RC} in mode '${MODE}':\n${OUT}\n${ERR}")
endif()
if(NOT OUT MATCHES "${WANT_IN_REPORT}")
  message(FATAL_ERROR
    "gate report lacks '${WANT_IN_REPORT}' in mode '${MODE}':\n${OUT}")
endif()

if(MODE STREQUAL "regress")
  # The exact-ruled metrics were untouched; the report must not blame them.
  if(OUT MATCHES "gate_fixture\\.avg_queries" AND OUT MATCHES "FAIL —.*avg_queries")
    message(FATAL_ERROR "regress mode wrongly failed avg_queries:\n${OUT}")
  endif()
endif()
message(STATUS "gate fixture mode '${MODE}' OK")
