//===- tests/serve/ServeServerTest.cpp - HTTP job API tests -------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Drives the serve-mode HTTP front end in process over a real loopback
// socket, with the runner's workers disabled (JobRunnerConfig::Workers=0)
// so queue contents are deterministic: submission, status, listing,
// admission control (429 + Retry-After), cancellation, the result-gating
// 409, and the observability endpoints.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeServer.h"

#include "serve/JobRunner.h"

#include "support/Http.h"
#include "support/Logging.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>

using namespace oppsla;
using namespace oppsla::serve;

namespace {

constexpr size_t TestCapacity = 3;

/// Raw one-shot HTTP exchange returning the full response (status line +
/// headers + body) — used where the header block itself is under test.
std::string rawExchange(uint16_t Port, const std::string &Request) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    ::close(Fd);
    return "";
  }
  size_t Sent = 0;
  while (Sent < Request.size()) {
    const ssize_t N =
        ::send(Fd, Request.data() + Sent, Request.size() - Sent, 0);
    if (N <= 0)
      break;
    Sent += static_cast<size_t>(N);
  }
  std::string Out;
  char Buf[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Out.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  return Out;
}

class ServeServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    Queue = std::make_unique<JobQueue>(TestCapacity);
    JobRunnerConfig RC;
    RC.Workers = 0; // jobs queue up but never execute
    RC.CheckpointDir = ::testing::TempDir() + "/serve_server_test";
    Runner = std::make_unique<JobRunner>(*Queue, RC);
    ServeServerConfig SC;
    SC.RetryAfterSeconds = 7;
    Server = std::make_unique<ServeServer>(*Queue, *Runner, SC);
    ASSERT_TRUE(Server->start());
    ASSERT_NE(Server->port(), 0);
  }

  void TearDown() override {
    Server->stop();
    Runner->stop();
  }

  http::Response roundTrip(const std::string &Method,
                           const std::string &Target,
                           const std::string &Body = "") {
    http::Response Out;
    std::string Error;
    EXPECT_TRUE(http::request(Server->port(), Method, Target, Body, Out,
                              Error))
        << Error;
    return Out;
  }

  std::unique_ptr<JobQueue> Queue;
  std::unique_ptr<JobRunner> Runner;
  std::unique_ptr<ServeServer> Server;
};

} // namespace

TEST_F(ServeServerTest, SubmitStatusAndList) {
  const http::Response Sub =
      roundTrip("POST", "/v1/jobs",
                "{\"kind\":\"eval\",\"scale\":\"smoke\",\"seed\":3}");
  EXPECT_EQ(Sub.Status, 202);
  EXPECT_NE(Sub.Body.find("\"id\":1"), std::string::npos) << Sub.Body;
  EXPECT_NE(Sub.Body.find("\"state\":\"queued\""), std::string::npos);

  const http::Response St = roundTrip("GET", "/v1/jobs/1");
  EXPECT_EQ(St.Status, 200);
  EXPECT_NE(St.Body.find("\"kind\":\"eval\""), std::string::npos)
      << St.Body;
  EXPECT_NE(St.Body.find("\"state\":\"queued\""), std::string::npos);
  EXPECT_NE(St.Body.find("\"seed\":3"), std::string::npos)
      << "status must embed the canonical spec: " << St.Body;

  const http::Response List = roundTrip("GET", "/v1/jobs");
  EXPECT_EQ(List.Status, 200);
  EXPECT_NE(List.Body.find("\"depth\":1"), std::string::npos) << List.Body;
  EXPECT_NE(List.Body.find("\"capacity\":3"), std::string::npos);
  EXPECT_NE(List.Body.find("\"id\":1"), std::string::npos);
}

TEST_F(ServeServerTest, BadSpecIs400) {
  const http::Response R =
      roundTrip("POST", "/v1/jobs", "{\"kind\":\"frobnicate\"}");
  EXPECT_EQ(R.Status, 400);
  EXPECT_NE(R.Body.find("unknown kind"), std::string::npos) << R.Body;
  const http::Response R2 = roundTrip("POST", "/v1/jobs", "not json");
  EXPECT_EQ(R2.Status, 400);
}

TEST_F(ServeServerTest, UnknownTargetsAre404) {
  EXPECT_EQ(roundTrip("GET", "/no-such-endpoint").Status, 404);
  EXPECT_EQ(roundTrip("GET", "/v1/other").Status, 404);
  const http::Response R = roundTrip("GET", "/v1/jobs/999");
  EXPECT_EQ(R.Status, 404);
  EXPECT_NE(R.Body.find("no job 999"), std::string::npos) << R.Body;
  EXPECT_EQ(roundTrip("GET", "/v1/jobs/notanumber").Status, 404);
}

TEST_F(ServeServerTest, FullQueueIs429WithRetryAfter) {
  // With the runner disabled, every accepted job stays queued — the
  // (capacity+1)-th submission must be rejected, not silently dropped.
  for (size_t I = 0; I != TestCapacity; ++I)
    EXPECT_EQ(roundTrip("POST", "/v1/jobs", "{}").Status, 202) << I;

  const std::string Body = "{}";
  const std::string Raw = rawExchange(
      Server->port(),
      "POST /v1/jobs HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
          std::to_string(Body.size()) + "\r\n\r\n" + Body);
  EXPECT_NE(Raw.find("HTTP/1.1 429"), std::string::npos) << Raw;
  EXPECT_NE(Raw.find("Retry-After: 7"), std::string::npos)
      << "configured Retry-After missing: " << Raw;
  EXPECT_NE(Raw.find("queue full"), std::string::npos) << Raw;
}

TEST_F(ServeServerTest, CancelLifecycle) {
  ASSERT_EQ(roundTrip("POST", "/v1/jobs", "{}").Status, 202);
  const http::Response Del = roundTrip("DELETE", "/v1/jobs/1");
  EXPECT_EQ(Del.Status, 200);
  EXPECT_NE(Del.Body.find("\"state\":\"cancelled\""), std::string::npos)
      << Del.Body;

  // Cancelling a finished (here: already cancelled) job conflicts.
  const http::Response Again = roundTrip("DELETE", "/v1/jobs/1");
  EXPECT_EQ(Again.Status, 409);
  EXPECT_NE(Again.Body.find("already cancelled"), std::string::npos)
      << Again.Body;
}

TEST_F(ServeServerTest, ResultBeforeDoneIs409) {
  ASSERT_EQ(roundTrip("POST", "/v1/jobs", "{}").Status, 202);
  const http::Response R = roundTrip("GET", "/v1/jobs/1/result");
  EXPECT_EQ(R.Status, 409);
  EXPECT_NE(R.Body.find("result not available"), std::string::npos)
      << R.Body;
}

TEST_F(ServeServerTest, MethodNotAllowed) {
  ASSERT_EQ(roundTrip("POST", "/v1/jobs", "{}").Status, 202);
  EXPECT_EQ(roundTrip("PUT", "/v1/jobs/1", "x").Status, 405);
}

TEST_F(ServeServerTest, HealthzAndMetricsExposeQueueState) {
  ASSERT_EQ(roundTrip("POST", "/v1/jobs", "{}").Status, 202);

  const http::Response H = roundTrip("GET", "/healthz");
  EXPECT_EQ(H.Status, 200);
  EXPECT_NE(H.Body.find("\"depth\":1"), std::string::npos) << H.Body;
  EXPECT_NE(H.Body.find("\"capacity\":3"), std::string::npos);
  EXPECT_NE(H.Body.find("\"inflight_shards\":0"), std::string::npos);
  EXPECT_NE(H.Body.find("\"state\":\"queued\""), std::string::npos);

  const http::Response M = roundTrip("GET", "/metrics");
  EXPECT_EQ(M.Status, 200);
  EXPECT_NE(M.Body.find("oppsla_serve_queue_depth"), std::string::npos)
      << "serve gauges missing from the exposition";
  EXPECT_NE(M.Body.find("oppsla_serve_jobs_submitted_total"),
            std::string::npos)
      << M.Body;
}

TEST_F(ServeServerTest, SubmitAdoptsClientTraceparent) {
  const std::string TP =
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  const std::string Body = "{}";
  const std::string Raw = rawExchange(
      Server->port(),
      "POST /v1/jobs HTTP/1.1\r\nHost: localhost\r\ntraceparent: " + TP +
          "\r\nContent-Length: " + std::to_string(Body.size()) +
          "\r\n\r\n" + Body);
  EXPECT_NE(Raw.find("HTTP/1.1 202"), std::string::npos) << Raw;
  EXPECT_NE(
      Raw.find("\"trace_id\":\"0af7651916cd43dd8448eb211c80319c\""),
      std::string::npos)
      << "the 202 must echo the client's trace id: " << Raw;

  // Status carries it too, and the job's stored context matches.
  const http::Response St = roundTrip("GET", "/v1/jobs/1");
  EXPECT_NE(
      St.Body.find("\"trace_id\":\"0af7651916cd43dd8448eb211c80319c\""),
      std::string::npos)
      << St.Body;
  const auto J = Queue->find(1);
  ASSERT_TRUE(J && J->Trace);
  EXPECT_EQ(J->Trace->context().TraceId,
            "0af7651916cd43dd8448eb211c80319c");
}

TEST_F(ServeServerTest, SubmitWithoutTraceparentMintsOne) {
  ASSERT_EQ(roundTrip("POST", "/v1/jobs", "{}").Status, 202);
  const auto J = Queue->find(1);
  ASSERT_TRUE(J && J->Trace);
  EXPECT_EQ(J->Trace->context().TraceId.size(), 32u);
  EXPECT_NE(J->Trace->context().TraceId,
            std::string(32, '0'));
}

TEST_F(ServeServerTest, TraceEndpointServesChromeTraceJson) {
  ASSERT_EQ(roundTrip("POST", "/v1/jobs", "{}").Status, 202);
  const http::Response R = roundTrip("GET", "/v1/jobs/1/trace");
  EXPECT_EQ(R.Status, 200);
  EXPECT_NE(R.Body.find("\"traceEvents\":["), std::string::npos) << R.Body;
  EXPECT_NE(R.Body.find("\"queued\""), std::string::npos)
      << "a queued job's trace must already show the queued phase: "
      << R.Body;
  EXPECT_EQ(roundTrip("GET", "/v1/jobs/999/trace").Status, 404);
}

TEST_F(ServeServerTest, LogzServesTheRingAndValidatesLevel) {
  logInfo() << "serve-logz-marker hello";
  const http::Response R = roundTrip("GET", "/logz?n=200");
  EXPECT_EQ(R.Status, 200);
  EXPECT_NE(R.Body.find("serve-logz-marker"), std::string::npos) << R.Body;
  EXPECT_NE(R.Body.find("\"level\":\"info\""), std::string::npos);

  // Level filter drops info lines; unknown levels are a client error.
  const http::Response Errors = roundTrip("GET", "/logz?n=200&level=error");
  EXPECT_EQ(Errors.Status, 200);
  EXPECT_EQ(Errors.Body.find("serve-logz-marker"), std::string::npos);
  EXPECT_EQ(roundTrip("GET", "/logz?level=bogus").Status, 400);
}

TEST_F(ServeServerTest, RetryAfterDerivesFromObservedServiceTime) {
  // With service samples, Retry-After estimates the backlog drain time:
  // ceil(median * (depth + 1) / max(1, workers)). Here: median 2s, depth
  // 3 (the full queue), workers 0 -> treated as 1 -> ceil(2*4/1) = 8.
  Runner->recordServiceSample(2.0);
  for (size_t I = 0; I != TestCapacity; ++I)
    ASSERT_EQ(roundTrip("POST", "/v1/jobs", "{}").Status, 202) << I;
  const std::string Body = "{}";
  const std::string Raw = rawExchange(
      Server->port(),
      "POST /v1/jobs HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
          std::to_string(Body.size()) + "\r\n\r\n" + Body);
  EXPECT_NE(Raw.find("HTTP/1.1 429"), std::string::npos) << Raw;
  EXPECT_NE(Raw.find("Retry-After: 8"), std::string::npos)
      << "derived Retry-After missing: " << Raw;
}

TEST_F(ServeServerTest, MetricsExposeWaitAndExecHistograms) {
  ASSERT_EQ(roundTrip("POST", "/v1/jobs", "{}").Status, 202);
  const http::Response M = roundTrip("GET", "/metrics");
  EXPECT_EQ(M.Status, 200);
  EXPECT_NE(M.Body.find("oppsla_serve_queue_wait_ms"), std::string::npos)
      << "queue-wait histogram missing from the exposition";
}

TEST_F(ServeServerTest, QuitEndpointReleasesWait) {
  EXPECT_FALSE(Server->quitRequested());
  EXPECT_FALSE(Server->waitQuit(0.05));
  EXPECT_EQ(roundTrip("GET", "/quitquitquit").Status, 200);
  EXPECT_TRUE(Server->waitQuit(5.0));
}
