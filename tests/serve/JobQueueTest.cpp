//===- tests/serve/JobQueueTest.cpp - Job queue + spec parsing tests ----------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The admission-control and scheduling contract of the serve queue:
// bounded capacity with Force-bypass for resume, priority-then-FIFO pop
// order, cancel semantics across the job lifecycle, and the JSON job-spec
// parser's accept/reject behaviour.
//
//===----------------------------------------------------------------------===//

#include "serve/JobQueue.h"

#include <gtest/gtest.h>

#include <thread>

using namespace oppsla;
using namespace oppsla::serve;

namespace {

JobSpec specWithPriority(int Priority) {
  JobSpec S;
  S.Priority = Priority;
  return S;
}

/// create() + enqueue() in one step; returns the job.
std::shared_ptr<Job> submit(JobQueue &Q, int Priority) {
  auto J = Q.create(specWithPriority(Priority));
  EXPECT_TRUE(Q.enqueue(J));
  return J;
}

} // namespace

TEST(JobQueue, PopOrderIsPriorityThenFifo) {
  JobQueue Q(8);
  const auto Low = submit(Q, 0);
  const auto HighA = submit(Q, 5);
  const auto Mid = submit(Q, 1);
  const auto HighB = submit(Q, 5);

  // Highest priority first; FIFO among equal priorities.
  EXPECT_EQ(Q.pop(), HighA);
  EXPECT_EQ(Q.pop(), HighB);
  EXPECT_EQ(Q.pop(), Mid);
  EXPECT_EQ(Q.pop(), Low);
  // pop() flips the state to Running.
  EXPECT_EQ(Low->State.load(), JobState::Running);
}

TEST(JobQueue, CapacityRejectsAndForceBypasses) {
  JobQueue Q(2);
  EXPECT_EQ(Q.capacity(), 2u);
  submit(Q, 0);
  submit(Q, 0);
  EXPECT_EQ(Q.depth(), 2u);

  auto Third = Q.create(specWithPriority(0));
  EXPECT_FALSE(Q.enqueue(Third)) << "a full queue must reject";
  EXPECT_EQ(Q.depth(), 2u);
  // The rejected job stays registered (the HTTP 429 can still be traced
  // back to a known id) but never runs.
  EXPECT_EQ(Q.find(Third->Id), Third);

  // Resume/drain requeues bypass admission control.
  EXPECT_TRUE(Q.enqueue(Third, /*Force=*/true));
  EXPECT_EQ(Q.depth(), 3u);
}

TEST(JobQueue, CancelQueuedJobIsImmediateAndPopSkipsIt) {
  JobQueue Q(4);
  const auto A = submit(Q, 0);
  const auto B = submit(Q, 0);
  EXPECT_TRUE(Q.cancel(A->Id));
  EXPECT_EQ(A->State.load(), JobState::Cancelled);

  // pop() drops the cancelled job and returns the survivor.
  EXPECT_EQ(Q.pop(), B);
  EXPECT_EQ(Q.depth(), 0u);
}

TEST(JobQueue, CancelRunningJobSetsFlagOnly) {
  JobQueue Q(4);
  const auto J = submit(Q, 0);
  ASSERT_EQ(Q.pop(), J);
  ASSERT_EQ(J->State.load(), JobState::Running);

  EXPECT_TRUE(Q.cancel(J->Id));
  // Still running: the runner honours the flag at its next shard boundary.
  EXPECT_EQ(J->State.load(), JobState::Running);
  EXPECT_TRUE(J->CancelRequested.load());
}

TEST(JobQueue, CancelFinishedOrUnknownJobFails) {
  JobQueue Q(4);
  const auto J = submit(Q, 0);
  ASSERT_EQ(Q.pop(), J);
  J->State.store(JobState::Done);
  EXPECT_FALSE(Q.cancel(J->Id)) << "finished jobs cannot be cancelled";
  EXPECT_FALSE(Q.cancel(12345)) << "unknown id";
}

TEST(JobQueue, CloseWakesBlockedPopAndKeepsQueuedJobs) {
  JobQueue Q(4);
  std::thread Blocked([&Q] { EXPECT_EQ(Q.pop(), nullptr); });
  // Give the popper a moment to block, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Q.close();
  Blocked.join();

  // A job enqueued (Force) after close stays Queued for a later resume;
  // pop keeps returning nullptr.
  auto J = Q.create(specWithPriority(0));
  EXPECT_TRUE(Q.enqueue(J, /*Force=*/true));
  EXPECT_EQ(Q.pop(), nullptr);
  EXPECT_EQ(J->State.load(), JobState::Queued);
}

TEST(JobQueue, AdoptRestoresIdAndBumpsCounter) {
  JobQueue Q(4);
  auto Recovered = std::make_shared<Job>();
  Recovered->Id = 41;
  Recovered->Spec = specWithPriority(0);
  Q.adopt(Recovered);
  EXPECT_EQ(Q.find(41), Recovered);
  // Fresh ids continue past every adopted one.
  EXPECT_EQ(Q.create(specWithPriority(0))->Id, 42u);
}

TEST(JobSpec, ParseNestedAndFlatForms) {
  JobSpec S;
  std::string Error;
  ASSERT_TRUE(parseJobSpec(
      "{\"kind\":\"attack\",\"attack\":\"suopa\","
      "\"victim\":{\"task\":\"cifar\",\"arch\":\"cnn\",\"scale\":\"small\"},"
      "\"seed\":9,\"budget\":128,\"priority\":3,"
      "\"slice\":{\"begin\":10,\"count\":5}}",
      S, Error))
      << Error;
  EXPECT_EQ(S.Kind, JobKind::Attack);
  EXPECT_EQ(S.AttackName, "suopa");
  EXPECT_EQ(S.TaskName, "cifar");
  EXPECT_EQ(S.ArchName, "cnn");
  EXPECT_EQ(S.ScaleName, "small");
  EXPECT_EQ(S.Seed, 9u);
  EXPECT_EQ(S.Budget, 128u);
  EXPECT_EQ(S.Priority, 3);
  EXPECT_EQ(S.Begin, 10u);
  EXPECT_EQ(S.Count, 5u);

  // Flat keys are an accepted spelling of the same spec.
  JobSpec Flat;
  ASSERT_TRUE(parseJobSpec("{\"kind\":\"eval\",\"task\":\"cifar\","
                           "\"scale\":\"smoke\",\"seed\":2,\"begin\":1,"
                           "\"count\":4}",
                           Flat, Error))
      << Error;
  EXPECT_EQ(Flat.Kind, JobKind::Eval);
  EXPECT_EQ(Flat.ScaleName, "smoke");
  EXPECT_EQ(Flat.Begin, 1u);
  EXPECT_EQ(Flat.Count, 4u);

  // An empty object is a valid eval job with defaults.
  JobSpec Defaults;
  ASSERT_TRUE(parseJobSpec("{}", Defaults, Error)) << Error;
  EXPECT_EQ(Defaults.Kind, JobKind::Eval);
  EXPECT_EQ(Defaults.ScaleName, "smoke");
  EXPECT_EQ(Defaults.Seed, 1u);
}

TEST(JobSpec, ParseRejectsBadInput) {
  JobSpec S;
  std::string Error;
  EXPECT_FALSE(parseJobSpec("not json", S, Error));
  EXPECT_FALSE(parseJobSpec("[1,2]", S, Error));
  EXPECT_NE(Error.find("object"), std::string::npos) << Error;
  EXPECT_FALSE(parseJobSpec("{\"kind\":\"frobnicate\"}", S, Error));
  EXPECT_NE(Error.find("unknown kind"), std::string::npos) << Error;
  EXPECT_FALSE(
      parseJobSpec("{\"kind\":\"attack\",\"attack\":\"nope\"}", S, Error));
  EXPECT_NE(Error.find("unknown attack"), std::string::npos) << Error;
  EXPECT_FALSE(parseJobSpec("{\"task\":\"mnist\"}", S, Error));
  EXPECT_NE(Error.find("unknown task"), std::string::npos) << Error;
  EXPECT_FALSE(parseJobSpec("{\"scale\":\"galactic\"}", S, Error));
  EXPECT_NE(Error.find("unknown scale"), std::string::npos) << Error;
}

TEST(JobSpec, CanonicalJsonRoundTripsThroughParser) {
  // jobSpecJson() must render a form parseJobSpec() accepts unchanged —
  // the stability that keeps checkpoint and result artifacts
  // byte-identical across resume.
  JobSpec S;
  S.Kind = JobKind::Attack;
  S.AttackName = "random";
  S.ArchName = "mlp";
  S.ScaleName = "small";
  S.Seed = 17;
  S.Budget = 99;
  S.Priority = -2;
  S.Begin = 3;
  S.Count = 6;
  const std::string Json = jobSpecJson(S);

  JobSpec Back;
  std::string Error;
  ASSERT_TRUE(parseJobSpec(Json, Back, Error)) << Error << "\n" << Json;
  EXPECT_EQ(jobSpecJson(Back), Json);
}
