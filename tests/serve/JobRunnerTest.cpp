//===- tests/serve/JobRunnerTest.cpp - Job execution engine tests -------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Runner behaviour that needs real job execution: cancellation observed
// at a shard boundary (the cancelled instant reports the first shard that
// did NOT run, and the partial trace stays fetchable), and the service
// time samples feeding the derived Retry-After.
//
//===----------------------------------------------------------------------===//

#include "serve/JobRunner.h"

#include "serve/JobQueue.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

using namespace oppsla;
using namespace oppsla::serve;

namespace {

/// A tiny real attack job: random-pair attack on a smoke-scale victim,
/// sliced to \p Count images so CheckpointEvery=1 yields Count shards.
JobSpec attackSpec(size_t Count) {
  JobSpec S;
  std::string Error;
  EXPECT_TRUE(parseJobSpec(
      "{\"kind\":\"attack\",\"attack\":\"random\","
      "\"victim\":{\"task\":\"cifar\",\"arch\":\"resnet\","
      "\"scale\":\"smoke\"},\"seed\":1,\"budget\":16,"
      "\"slice\":{\"begin\":0,\"count\":" +
          std::to_string(Count) + "}}",
      S, Error))
      << Error;
  return S;
}

/// Waits (bounded) until \p J reaches a terminal state.
JobState waitTerminal(const Job &J, double TimeoutSeconds = 120.0) {
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(TimeoutSeconds);
  while (std::chrono::steady_clock::now() < Deadline) {
    const JobState S = J.State.load(std::memory_order_relaxed);
    if (S == JobState::Done || S == JobState::Failed ||
        S == JobState::Cancelled)
      return S;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return J.State.load(std::memory_order_relaxed);
}

} // namespace

TEST(JobRunner, CancelAtShardBoundaryEmitsShardTaggedInstant) {
  JobQueue Queue(8);
  JobRunnerConfig RC;
  RC.Workers = 1;
  RC.Threads = 1;
  RC.CheckpointEvery = 1; // one image per shard: 4 shard boundaries
  RC.CheckpointDir = ::testing::TempDir() + "/job_runner_cancel_test";
  // Cancel after the first shard checkpoints; the runner must observe it
  // at the next boundary, before shard 1 sweeps.
  JobQueue *QueuePtr = &Queue;
  RC.OnShardDone = [QueuePtr](uint64_t JobId, size_t ShardIdx) {
    if (ShardIdx == 0)
      QueuePtr->cancel(JobId);
  };
  JobRunner Runner(Queue, RC);

  auto J = Queue.create(attackSpec(4));
  ASSERT_TRUE(J->Trace) << "tracing is on by default";
  ASSERT_TRUE(Queue.enqueue(J));
  Runner.start();
  const JobState Final = waitTerminal(*J);
  Runner.stop();

  ASSERT_EQ(Final, JobState::Cancelled);
  EXPECT_EQ(J->Done.load(), 1u) << "exactly shard 0 ran";

  // The partial trace is still fetchable and carries the cancellation
  // boundary: instant "cancelled" tagged with shard 1, the first shard
  // that did not run.
  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(J->Trace->chromeTraceJson(), Doc, Error))
      << Error;
  const json::Value *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  bool SawCancelled = false, SawShard0 = false, SawShard1 = false;
  for (const json::Value &E : Events->array()) {
    const std::string Name = E.getString("name", "");
    const json::Value *Args = E.find("args");
    if (Name == "cancelled") {
      SawCancelled = true;
      ASSERT_NE(Args, nullptr);
      EXPECT_EQ(E.getString("ph", ""), "i");
      EXPECT_EQ(Args->getNumber("shard", -1.0), 1.0)
          << "cancel boundary must be the first unprocessed shard";
    }
    if (Name == "shard" && Args) {
      SawShard0 |= Args->getNumber("shard", -1.0) == 0.0;
      SawShard1 |= Args->getNumber("shard", -1.0) == 1.0;
    }
  }
  EXPECT_TRUE(SawCancelled);
  EXPECT_TRUE(SawShard0) << "shard 0 completed and must appear";
  EXPECT_FALSE(SawShard1) << "shard 1 never ran";

  // A cancelled job yields no service-time sample (only Done jobs feed
  // the Retry-After estimate).
  EXPECT_EQ(Runner.medianServiceSeconds(), 0.0);
}

TEST(JobRunner, ServiceSamplesFeedTheMedian) {
  JobQueue Queue(2);
  JobRunnerConfig RC;
  RC.Workers = 0;
  RC.CheckpointDir = ::testing::TempDir() + "/job_runner_median_test";
  JobRunner Runner(Queue, RC);
  EXPECT_EQ(Runner.medianServiceSeconds(), 0.0);
  Runner.recordServiceSample(4.0);
  EXPECT_EQ(Runner.medianServiceSeconds(), 4.0);
  Runner.recordServiceSample(2.0);
  EXPECT_EQ(Runner.medianServiceSeconds(), 3.0) << "even count averages";
  Runner.recordServiceSample(10.0);
  EXPECT_EQ(Runner.medianServiceSeconds(), 4.0);
}
