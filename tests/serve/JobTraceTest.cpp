//===- tests/serve/JobTraceTest.cpp - Per-job phase timeline tests ------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The JobTrace span recorder and its Chrome Trace Event JSON export:
// phase tokens, idempotent endPhase, shard tagging, instants, open-span
// rendering for partial traces, and the process-wide tracing gate.
//
//===----------------------------------------------------------------------===//

#include "serve/JobTrace.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace oppsla;
using namespace oppsla::serve;

namespace {

json::Value parseTrace(const JobTrace &T) {
  json::Value Doc;
  std::string Error;
  EXPECT_TRUE(json::parse(T.chromeTraceJson(), Doc, Error)) << Error;
  return Doc;
}

/// First event whose "name" is \p Name, or nullptr.
const json::Value *findEvent(const json::Value &Doc, const std::string &Name) {
  const json::Value *Events = Doc.find("traceEvents");
  if (!Events || !Events->isArray())
    return nullptr;
  for (const json::Value &E : Events->array())
    if (E.getString("name", "") == Name)
      return &E;
  return nullptr;
}

} // namespace

TEST(JobTrace, PhaseSpansRenderAsCompleteEvents) {
  JobTrace T(7, telemetry::mintTraceContext());
  const uint64_t Tok = T.beginPhase("queued");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const uint64_t DurNs = T.endPhase(Tok);
  EXPECT_GE(DurNs, 1000000u) << "a 2ms span must report >= 1ms";

  const json::Value Doc = parseTrace(T);
  const json::Value *E = findEvent(Doc, "queued");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->getString("ph", ""), "X");
  EXPECT_EQ(E->getNumber("pid", -1.0), 1.0);
  EXPECT_EQ(E->getNumber("tid", -1.0), 7.0);
  EXPECT_GE(E->getNumber("dur", -1.0), 1000.0) << "dur is microseconds";
  const json::Value *Args = E->find("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_EQ(Args->getString("trace_id", ""), T.context().TraceId);
}

TEST(JobTrace, EndPhaseIsIdempotentAndRejectsBadTokens) {
  JobTrace T(1, telemetry::mintTraceContext());
  const uint64_t Tok = T.beginPhase("setup");
  EXPECT_GT(T.endPhase(Tok), 0u);
  EXPECT_EQ(T.endPhase(Tok), 0u) << "double-close must be a no-op";
  EXPECT_EQ(T.endPhase(0), 0u) << "token 0 is never valid";
  EXPECT_EQ(T.endPhase(999), 0u) << "out-of-range token";

  // Exactly one "setup" event in the export despite the re-closes.
  const json::Value Doc = parseTrace(T);
  size_t Count = 0;
  for (const json::Value &E : Doc.find("traceEvents")->array())
    Count += E.getString("name", "") == "setup";
  EXPECT_EQ(Count, 1u);
}

TEST(JobTrace, ShardPhasesCarryTheirIndex) {
  JobTrace T(3, telemetry::mintTraceContext());
  T.endPhase(T.beginPhase("shard", 0));
  T.endPhase(T.beginPhase("shard", 2));

  const json::Value Doc = parseTrace(T);
  std::vector<double> Shards;
  for (const json::Value &E : Doc.find("traceEvents")->array())
    if (E.getString("name", "") == "shard") {
      const json::Value *Args = E.find("args");
      ASSERT_NE(Args, nullptr);
      Shards.push_back(Args->getNumber("shard", -1.0));
    }
  ASSERT_EQ(Shards.size(), 2u);
  EXPECT_EQ(Shards[0], 0.0);
  EXPECT_EQ(Shards[1], 2.0);
}

TEST(JobTrace, InstantsAndOpenSpansRenderInPartialTraces) {
  JobTrace T(5, telemetry::mintTraceContext());
  T.beginPhase("shard", 1); // left open: the job is "still running"
  T.instant("cancelled", 1);

  const json::Value Doc = parseTrace(T);
  const json::Value *Open = findEvent(Doc, "shard");
  ASSERT_NE(Open, nullptr);
  EXPECT_EQ(Open->getString("ph", ""), "X");
  ASSERT_NE(Open->find("args"), nullptr);
  EXPECT_TRUE(Open->find("args")->find("open") != nullptr &&
              Open->find("args")->find("open")->boolean())
      << "open spans must be flagged";

  const json::Value *I = findEvent(Doc, "cancelled");
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->getString("ph", ""), "i");
  EXPECT_EQ(I->getString("s", ""), "t");
  EXPECT_EQ(I->find("args")->getNumber("shard", -1.0), 1.0);
}

TEST(JobTrace, ExportCarriesMetadataAndMonotoneTimestamps) {
  JobTrace T(9, telemetry::mintTraceContext());
  for (int I = 0; I != 3; ++I)
    T.endPhase(T.beginPhase("shard", I));

  const json::Value Doc = parseTrace(T);
  const auto &Events = Doc.find("traceEvents")->array();
  ASSERT_GE(Events.size(), 5u) << "2 metadata + 3 spans";
  EXPECT_EQ(Events[0].getString("ph", ""), "M") << "metadata leads";
  double LastTs = -1.0;
  for (const json::Value &E : Events) {
    if (E.getString("ph", "") == "M")
      continue;
    const double Ts = E.getNumber("ts", -1.0);
    EXPECT_GE(Ts, LastTs) << "events must be sorted by start time";
    LastTs = Ts;
  }
  EXPECT_EQ(Doc.getString("displayTimeUnit", ""), "ms");
}

TEST(JobTrace, TracingGateToggles) {
  EXPECT_TRUE(jobTracingEnabled()) << "tracing ships enabled";
  setJobTracingEnabled(false);
  EXPECT_FALSE(jobTracingEnabled());
  setJobTracingEnabled(true);
  EXPECT_TRUE(jobTracingEnabled());
}
