//===- examples/transfer_attack.cpp - Program transferability demo ------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the paper's transferability result (Section 5, Table 1):
// an adversarial program synthesized against a *surrogate* classifier the
// attacker trained themselves remains query-efficient against a different
// *target* classifier — so the expensive synthesis queries never have to
// hit the victim.
//
// Run: build/examples/transfer_attack [--source resnet] [--target vgg]
//                                     [--scale smoke|small|paper]
//
//===----------------------------------------------------------------------===//

#include "attacks/SketchAttack.h"
#include "eval/Evaluation.h"
#include "eval/Experiments.h"
#include "support/ArgParse.h"
#include "support/Table.h"

#include <iostream>

using namespace oppsla;

int main(int argc, char **argv) {
  ArgParse Args(argc, argv);
  const BenchScale Scale = BenchScale::preset(Args.get("scale", "smoke"));
  const Arch Source = archFromName(Args.get("source", "MiniResNet"));
  const Arch Target = archFromName(Args.get("target", "MiniVGG"));
  const TaskKind Task = TaskKind::CifarLike;

  std::cout << "Surrogate (synthesis): " << archName(Source)
            << "\nTarget   (attack)   : " << archName(Target) << "\n\n";

  auto Surrogate = makeScaledVictim(Task, Source, Scale);
  auto Victim = makeScaledVictim(Task, Target, Scale);

  // Programs synthesized against the surrogate only.
  const std::vector<Program> Programs = synthesizeClassPrograms(
      *Surrogate, victimStem(Task, Source, Scale), Task, Scale);

  const Dataset Test = makeTestSet(Task, Scale);
  Table T({"programs run against", "success rate", "avg #queries",
           "median #queries"});
  struct Cell {
    const char *Name;
    NNClassifier *C;
  };
  for (const Cell &Cell : {Cell{"surrogate (own classifier)",
                                Surrogate.get()},
                           Cell{"target (transfer)", Victim.get()}}) {
    const auto Logs =
        runProgramsOverSet(Programs, *Cell.C, Test, Scale.EvalQueryCap);
    const QuerySample S = toQuerySample(Logs);
    T.addRow({Cell.Name, Table::fmt(100.0 * S.successRate(), 1) + "%",
              Table::fmt(S.avgQueries(), 1),
              Table::fmt(S.medianQueries(), 1)});
  }
  T.print(std::cout);
  std::cout << "\nA small increase in the transfer row's query count "
               "(vs the surrogate row)\nis the paper's transferability "
               "claim; success rates differ because the two\nclassifiers "
               "have different one pixel robustness, not because of the "
               "programs.\n";
  return 0;
}
