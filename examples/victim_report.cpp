//===- examples/victim_report.cpp - Victim vulnerability report -------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Diagnoses a victim classifier the way an attacker would: test accuracy,
// confidence-margin distribution, and the fraction of test images that
// admit *any* one pixel adversarial example in the RGB-corner space
// (measured by exhaustively running the fixed-prioritization sketch).
//
// Run: build/examples/victim_report [--scale smoke|small|paper]
//                                   [--arch vgg|resnet|googlenet|densenet]
//                                   [--task cifar|imagenet] [--images N]
//
//===----------------------------------------------------------------------===//

#include "attacks/SketchAttack.h"
#include "eval/Evaluation.h"
#include "eval/Experiments.h"
#include "attacks/Attack.h"
#include "support/ArgParse.h"
#include "support/Stats.h"

#include <cmath>
#include <iostream>

using namespace oppsla;

int main(int argc, char **argv) {
  ArgParse Args(argc, argv);
  const BenchScale Scale = BenchScale::preset(Args.get("scale", "small"));
  const Arch A = archFromName(Args.get("arch", "vgg") == "vgg"
                                  ? "MiniVGG"
                                  : Args.get("arch", "vgg"));
  const TaskKind Task = Args.get("task", "cifar") == "imagenet"
                            ? TaskKind::ImageNetLike
                            : TaskKind::CifarLike;

  auto Victim = makeScaledVictim(Task, A, Scale);
  Dataset Test = makeTestSet(Task, Scale);
  const size_t MaxImages =
      static_cast<size_t>(Args.getInt("images", 40));
  if (Test.size() > MaxImages) {
    Test.Images.resize(MaxImages);
    Test.Labels.resize(MaxImages);
  }

  // Accuracy and margins.
  size_t Correct = 0;
  RunningStat Margin;
  for (size_t I = 0; I != Test.size(); ++I) {
    const std::vector<float> S = Victim->scores(Test.Images[I]);
    if (argmaxScore(S) == Test.Labels[I]) {
      ++Correct;
      double BestOther = 0.0;
      for (size_t J = 0; J != S.size(); ++J)
        if (J != Test.Labels[I])
          BestOther = std::max(BestOther, static_cast<double>(S[J]));
      Margin.addTracked(S[Test.Labels[I]] - BestOther);
    }
  }
  std::cout << "victim: " << Victim->name() << "\n"
            << "test accuracy: "
            << 100.0 * static_cast<double>(Correct) /
                   static_cast<double>(Test.size())
            << "% over " << Test.size() << " images\n"
            << "confidence margin (correct images): mean=" << Margin.mean()
            << " min=" << Margin.min() << " max=" << Margin.max() << "\n";

  // One pixel leverage: how far can a single corner pixel move the margin,
  // in probability space and in logit (log-prob) space? An attack flips
  // the argmax iff the logit-margin leverage exceeds the clean logit
  // margin.
  {
    auto LogitMargin = [](const std::vector<float> &S, size_t True) {
      double BestOther = 0.0;
      for (size_t J = 0; J != S.size(); ++J)
        if (J != True)
          BestOther = std::max(BestOther, static_cast<double>(S[J]));
      return std::log(std::max(1e-12, static_cast<double>(S[True]))) -
             std::log(std::max(1e-12, BestOther));
    };
    RunningStat Leverage, LogitLeverage, CleanLogit;
    const size_t Probe = std::min<size_t>(Test.size(), 8);
    for (size_t I = 0; I != Probe; ++I) {
      const Image &X = Test.Images[I];
      const std::vector<float> S0 = Victim->scores(X);
      if (argmaxScore(S0) != Test.Labels[I])
        continue;
      const double M0 = untargetedMargin(S0, Test.Labels[I]);
      const double L0 = LogitMargin(S0, Test.Labels[I]);
      CleanLogit.addTracked(L0);
      double MinMargin = M0, MinLogit = L0;
      const PairSpace Space(X);
      for (size_t T = 0; T != 400; ++T) {
        // Deterministic stride through the pair space.
        const PairId Id =
            static_cast<PairId>((T * 1315423911ULL) % Space.size());
        const LocPert LP = Space.pairOf(Id);
        Image Xp = X.withPixel(LP.Loc.Row, LP.Loc.Col, LP.perturbation());
        const std::vector<float> S = Victim->scores(Xp);
        MinMargin = std::min(MinMargin,
                             untargetedMargin(S, Test.Labels[I]));
        MinLogit = std::min(MinLogit, LogitMargin(S, Test.Labels[I]));
      }
      Leverage.addTracked(M0 - MinMargin);
      LogitLeverage.addTracked(L0 - MinLogit);
    }
    std::cout << "one pixel margin leverage (400-pair sample): mean="
              << Leverage.mean() << " max=" << Leverage.max() << "\n"
              << "one pixel logit leverage: mean=" << LogitLeverage.mean()
              << " max=" << LogitLeverage.max()
              << " | clean logit margin: mean=" << CleanLogit.mean()
              << " min=" << CleanLogit.min() << "\n";
  }

  // Exhaustive one pixel vulnerability (unlimited budget).
  SketchAttack Exhaustive(allFalseProgram(), "exhaustive");
  const auto Logs = runAttackOverSet(Exhaustive, *Victim, Test,
                                     Attack::Unlimited);
  const QuerySample Sample = toQuerySample(Logs);
  std::cout << "one pixel vulnerable: "
            << 100.0 * Sample.successRate() << "% of "
            << Sample.numAttacks() << " correctly-classified images\n"
            << "queries to find (fixed prioritization): avg="
            << Sample.avgQueries() << " median=" << Sample.medianQueries()
            << "\n";
  return 0;
}
