//===- examples/synthesize_program.cpp - Full synthesis walkthrough ----------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The "attacker's workflow" example: pick a victim architecture and a
// target class, run OPPSLA's Metropolis-Hastings synthesis with a visible
// per-iteration trace, save the resulting adversarial program to a file,
// reload it, and attack held-out images with it.
//
// Run: build/examples/synthesize_program
//        [--arch vgg|resnet|googlenet|densenet|resnet50]
//        [--class K] [--iters N] [--scale smoke|small|paper]
//        [--out program.txt]
//
//===----------------------------------------------------------------------===//

#include "attacks/SketchAttack.h"
#include "eval/Evaluation.h"
#include "eval/Experiments.h"
#include "support/ArgParse.h"
#include "support/Table.h"

#include <iostream>

using namespace oppsla;

int main(int argc, char **argv) {
  ArgParse Args(argc, argv);
  const BenchScale Scale = BenchScale::preset(Args.get("scale", "smoke"));
  const Arch A = archFromName(Args.get("arch", "MiniResNet"));
  const auto Label = static_cast<size_t>(Args.getInt("class", 1));
  const auto Iters =
      static_cast<size_t>(Args.getInt("iters", (long long)Scale.SynthIters));
  const std::string OutPath = Args.get("out", "oppsla_program.txt");

  std::cout << "Victim: " << archName(A) << " on the "
            << taskName(TaskKind::CifarLike) << " task; attacking class "
            << Label << ".\n\n";
  auto Victim = makeScaledVictim(TaskKind::CifarLike, A, Scale);

  // Synthesize with a visible trace.
  const Dataset Train = makeSynthesisSet(TaskKind::CifarLike, Label, Scale);
  SynthesisConfig Config;
  Config.MaxIter = Iters;
  Config.PerImageQueryCap = Scale.SynthQueryCap;
  std::vector<SynthesisStep> Trace;
  const Program P = synthesizeProgram(*Victim, Train, Config, &Trace);

  std::cout << "Synthesis trace (" << Train.size() << " training images, "
            << Iters << " iterations):\n";
  Table T({"iter", "accepted", "train avg #q", "cumulative synth #q"});
  for (const SynthesisStep &Step : Trace)
    T.addRow({std::to_string(Step.Iteration), Step.Accepted ? "yes" : "no",
              Table::fmt(Step.AvgQueries, 1),
              std::to_string(Step.CumulativeQueries)});
  T.print(std::cout);

  std::cout << "\nSynthesized adversarial program:\n" << P.str();

  // Persist + reload round trip (what a real attacker ships).
  if (!saveProgram(P, OutPath)) {
    std::cerr << "error: cannot write " << OutPath << "\n";
    return 1;
  }
  Program Reloaded;
  if (!loadProgram(Reloaded, OutPath)) {
    std::cerr << "error: cannot reload " << OutPath << "\n";
    return 1;
  }
  std::cout << "\nProgram saved to '" << OutPath << "' and reloaded.\n";

  // Attack held-out images with the reloaded program.
  const Dataset Test =
      makeTestSet(TaskKind::CifarLike, Scale).filterByClass(Label);
  SketchAttack Attack(Reloaded);
  const auto Logs =
      runAttackOverSet(Attack, *Victim, Test, Scale.EvalQueryCap);
  const QuerySample S = toQuerySample(Logs);
  std::cout << "\nHeld-out attack results (" << Test.size() << " images, "
            << "budget " << Scale.EvalQueryCap << "):\n"
            << "  success rate : "
            << Table::fmt(100.0 * S.successRate(), 1) << "%\n"
            << "  avg #queries : " << Table::fmt(S.avgQueries(), 1) << "\n"
            << "  med #queries : " << Table::fmt(S.medianQueries(), 1)
            << "\n";
  return 0;
}
