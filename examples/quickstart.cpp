//===- examples/quickstart.cpp - 60-second tour of the library --------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Trains a small victim CNN on the synthetic CIFAR-like task, synthesizes
// an OPPSLA adversarial program for one class, and attacks held-out images
// with it, comparing against the fixed-prioritization (all-conditions-
// False) program and Sparse-RS.
//
// Run: build/examples/quickstart [--scale smoke|small|paper] [--class K]
//
//===----------------------------------------------------------------------===//

#include "attacks/SketchAttack.h"
#include "attacks/SparseRS.h"
#include "eval/Evaluation.h"
#include "eval/Experiments.h"
#include "support/ArgParse.h"
#include "support/Table.h"

#include <iostream>

using namespace oppsla;

int main(int argc, char **argv) {
  ArgParse Args(argc, argv);
  const BenchScale Scale = BenchScale::preset(Args.get("scale", "smoke"));
  const auto AttackClass =
      static_cast<size_t>(Args.getInt("class", 0));

  std::cout << "== OPPSLA quickstart (scale: " << Scale.Name << ") ==\n\n";

  // 1. Train (or load) a victim classifier.
  std::cout << "[1/4] training victim classifier (MiniVGG, CIFAR-like)...\n";
  auto Victim = makeScaledVictim(TaskKind::CifarLike, Arch::MiniVGG, Scale);

  // 2. Synthesize an adversarial program for one class.
  std::cout << "[2/4] synthesizing an adversarial program for class "
            << AttackClass << " (" << Scale.SynthIters << " MH iterations)"
            << "...\n";
  const Dataset Train =
      makeSynthesisSet(TaskKind::CifarLike, AttackClass, Scale);
  SynthesisConfig Config;
  Config.MaxIter = Scale.SynthIters;
  Config.PerImageQueryCap = Scale.SynthQueryCap;
  const Program P = synthesizeProgram(*Victim, Train, Config);
  std::cout << "\nSynthesized program:\n" << P.str() << "\n";

  // 3. Attack held-out images of that class.
  std::cout << "[3/4] attacking held-out images...\n";
  const Dataset Test =
      makeTestSet(TaskKind::CifarLike, Scale).filterByClass(AttackClass);

  SketchAttack Oppsla(P);
  SketchAttack Fixed(allFalseProgram(), "Sketch+False");
  SparseRS Rs;

  Table T({"attack", "success rate", "avg #queries", "median #queries"});
  for (Attack *A : {static_cast<Attack *>(&Oppsla),
                    static_cast<Attack *>(&Fixed),
                    static_cast<Attack *>(&Rs)}) {
    const auto Logs =
        runAttackOverSet(*A, *Victim, Test, Scale.EvalQueryCap);
    const QuerySample S = toQuerySample(Logs);
    T.addRow({A->name(), Table::fmt(100.0 * S.successRate(), 1) + "%",
              Table::fmt(S.avgQueries(), 1),
              Table::fmt(S.medianQueries(), 1)});
  }

  // 4. Report.
  std::cout << "[4/4] results over " << Test.size()
            << " test images (budget " << Scale.EvalQueryCap
            << " queries):\n\n";
  T.print(std::cout);
  std::cout << "\nLower queries at equal success rate = better attack.\n";
  return 0;
}
