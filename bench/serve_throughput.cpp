//===- bench/serve_throughput.cpp - Job server throughput --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the serve subsystem end to end over real loopback HTTP: job
// submission/completion throughput (jobs/sec) and per-job latency
// (p50/p99) through the full queue -> runner -> checkpoint -> artifact
// path, plus a deterministic admission-control phase that saturates a
// workerless queue and counts the 429 rejects — an exact-gated metric,
// since sequential submissions against a disabled runner must reject
// precisely (submitted - capacity) jobs. Emits BENCH_serve.json.
//
//===----------------------------------------------------------------------===//

#include "serve/JobQueue.h"
#include "serve/JobRunner.h"
#include "serve/ServeServer.h"
#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/BenchScale.h"
#include "support/Http.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace oppsla;
using Clock = std::chrono::steady_clock;

namespace {

/// One tiny attack job: 2 images of the shared seed-1 victim, so every
/// job after the first reuses the pooled classifier and score cache and
/// the bench measures serving overhead, not victim training.
std::string jobBody(size_t I) {
  return "{\"kind\":\"attack\",\"attack\":\"random\","
         "\"victim\":{\"task\":\"cifar\",\"arch\":\"resnet\","
         "\"scale\":\"smoke\"},\"seed\":1,\"budget\":16,"
         "\"slice\":{\"begin\":" +
         std::to_string((I * 2) % 10) + ",\"count\":2}}";
}

/// POST /v1/jobs; returns the HTTP status and the admitted id (0 on
/// rejection).
int submitJob(uint16_t Port, const std::string &Body, uint64_t &Id) {
  http::Response Resp;
  std::string Error;
  if (!http::request(Port, "POST", "/v1/jobs", Body, Resp, Error)) {
    std::cerr << "error: submit failed: " << Error << "\n";
    std::exit(1);
  }
  Id = 0;
  json::Value Doc;
  if (Resp.Status == 202 && json::parse(Resp.Body, Doc, Error))
    Id = static_cast<uint64_t>(Doc.getNumber("id", 0.0));
  return Resp.Status;
}

/// Polls GET /v1/jobs/<id> until the job is done (aborts on failed /
/// cancelled — the bench's jobs must all succeed).
void waitDone(uint16_t Port, uint64_t Id) {
  for (;;) {
    http::Response Resp;
    std::string Error;
    if (!http::request(Port, "GET", "/v1/jobs/" + std::to_string(Id), "",
                       Resp, Error)) {
      std::cerr << "error: status poll failed: " << Error << "\n";
      std::exit(1);
    }
    json::Value Doc;
    if (Resp.Status == 200 && json::parse(Resp.Body, Doc, Error)) {
      const std::string State = Doc.getString("state", "");
      if (State == "done")
        return;
      if (State == "failed" || State == "cancelled") {
        std::cerr << "error: job " << Id << " " << State << ": "
                  << Doc.getString("error", "") << "\n";
        std::exit(1);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

double quantileMs(std::vector<double> Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  const size_t Idx = std::min(
      Sorted.size() - 1,
      static_cast<size_t>(Q * static_cast<double>(Sorted.size())));
  return Sorted[Idx] * 1e3;
}

} // namespace

int main(int argc, char **argv) {
  const ArgParse Args(argc, argv);
  if (!telemetry::configureFromArgs(Args))
    return 1;
  const BenchScale Scale = BenchScale::fromEnv();
  const size_t NumJobs = Scale.Name == "smoke"   ? 8
                         : Scale.Name == "paper" ? 48
                                                 : 16;

  std::cout << "== Serve throughput (scale: " << Scale.Name << ", "
            << NumJobs << " jobs) ==\n\n";

  // --- Phase 1: admission control at saturation. -----------------------
  // A workerless runner never drains the queue, so submissions beyond the
  // capacity MUST come back 429 — deterministically.
  constexpr size_t Capacity = 4;
  constexpr size_t Overflow = 3;
  size_t Rejects = 0;
  {
    serve::JobQueue Queue(Capacity);
    serve::JobRunnerConfig RC;
    RC.Workers = 0;
    RC.CheckpointDir = "serve-bench-admission";
    serve::JobRunner Runner(Queue, RC);
    serve::ServeServer Server(Queue, Runner);
    if (!Server.start())
      return 1;
    for (size_t I = 0; I != Capacity + Overflow; ++I) {
      uint64_t Id = 0;
      const int Status = submitJob(Server.port(), jobBody(I), Id);
      if (Status == 429)
        ++Rejects;
      else if (Status != 202) {
        std::cerr << "error: unexpected submit status " << Status << "\n";
        return 1;
      }
    }
    Server.stop();
    Runner.stop();
  }
  std::cout << "admission: capacity " << Capacity << ", submitted "
            << (Capacity + Overflow) << ", rejected " << Rejects
            << " (want " << Overflow << ")\n";
  if (Rejects != Overflow) {
    std::cerr << "error: admission control is not deterministic\n";
    return 1;
  }

  // --- Phase 2: throughput through the full serving path. --------------
  serve::JobQueue Queue(256);
  serve::JobRunnerConfig RC;
  RC.Workers = 2;
  RC.Threads = 1;
  RC.CheckpointEvery = 4;
  RC.CheckpointDir = "serve-bench-ckpt";
  serve::JobRunner Runner(Queue, RC);
  serve::ServeServer Server(Queue, Runner);
  if (!Server.start())
    return 1;
  Runner.start();

  // Warmup: the first job trains (or loads) the pooled victim; keep that
  // cost out of the serving numbers.
  {
    uint64_t WarmId = 0;
    if (submitJob(Server.port(), jobBody(0), WarmId) != 202 || !WarmId)
      return 1;
    waitDone(Server.port(), WarmId);
  }

  const auto T0 = Clock::now();
  std::vector<std::pair<uint64_t, Clock::time_point>> Pending;
  Pending.reserve(NumJobs);
  for (size_t I = 0; I != NumJobs; ++I) {
    uint64_t Id = 0;
    if (submitJob(Server.port(), jobBody(I), Id) != 202 || !Id) {
      std::cerr << "error: throughput submission rejected\n";
      return 1;
    }
    Pending.emplace_back(Id, Clock::now());
  }

  std::vector<double> LatencySeconds;
  LatencySeconds.reserve(NumJobs);
  for (const auto &[Id, Submitted] : Pending) {
    waitDone(Server.port(), Id);
    LatencySeconds.push_back(
        std::chrono::duration<double>(Clock::now() - Submitted).count());
  }
  const double Wall = std::chrono::duration<double>(Clock::now() - T0).count();
  Server.stop();
  Runner.stop();

  std::sort(LatencySeconds.begin(), LatencySeconds.end());
  const double JobsPerSec =
      Wall > 0 ? static_cast<double>(NumJobs) / Wall : 0.0;
  const double P50 = quantileMs(LatencySeconds, 0.50);
  const double P99 = quantileMs(LatencySeconds, 0.99);

  std::cout << "throughput: " << NumJobs << " jobs in " << Wall
            << " s = " << JobsPerSec << " jobs/sec\n"
            << "latency: p50 " << P50 << " ms, p99 " << P99 << " ms\n";

  BenchJson BJ("serve", Scale.Name, Args);
  BJ.set("jobs", static_cast<double>(NumJobs));
  BJ.set("jobs_per_sec", JobsPerSec);
  BJ.set("job_latency_p50_ms", P50);
  BJ.set("job_latency_p99_ms", P99);
  BJ.set("queue_full_rejects", static_cast<double>(Rejects));
  BJ.set("wall_seconds", Wall);
  BJ.addTelemetryCounters();
  if (!BJ.writeFromArgs(Args))
    return 1;
  return 0;
}
