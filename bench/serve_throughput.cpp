//===- bench/serve_throughput.cpp - Job server throughput --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the serve subsystem end to end over real loopback HTTP: job
// submission/completion throughput (jobs/sec) and per-job latency
// (p50/p99) through the full queue -> runner -> checkpoint -> artifact
// path, plus a deterministic admission-control phase that saturates a
// workerless queue and counts the 429 rejects — an exact-gated metric,
// since sequential submissions against a disabled runner must reject
// precisely (submitted - capacity) jobs.
//
// The throughput phase runs twice per repeat — job tracing on, then off —
// and reports trace_overhead_pct, the percent of jobs/sec the per-job
// timeline recording costs (gated at <= 5% by an absolute-cap rule). The
// estimate is the MINIMUM overhead across the adjacent on/off pairs: a
// real tracing cost slows every pair, while a scheduler stall only
// poisons one, so the min resists run-to-run noise. Primary throughput/
// latency metrics come from each mode's best repeat, and from the traced
// runs, which is how `oppsla serve` ships. Emits BENCH_serve.json.
//
//===----------------------------------------------------------------------===//

#include "serve/JobQueue.h"
#include "serve/JobRunner.h"
#include "serve/ServeServer.h"
#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/BenchScale.h"
#include "support/Http.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace oppsla;
using Clock = std::chrono::steady_clock;

namespace {

/// One tiny attack job: 2 images of the shared seed-1 victim, so every
/// job after the first reuses the pooled classifier and score cache and
/// the bench measures serving overhead, not victim training.
std::string jobBody(size_t I) {
  return "{\"kind\":\"attack\",\"attack\":\"random\","
         "\"victim\":{\"task\":\"cifar\",\"arch\":\"resnet\","
         "\"scale\":\"smoke\"},\"seed\":1,\"budget\":16,"
         "\"slice\":{\"begin\":" +
         std::to_string((I * 2) % 10) + ",\"count\":2}}";
}

/// POST /v1/jobs; returns the HTTP status and the admitted id (0 on
/// rejection).
int submitJob(uint16_t Port, const std::string &Body, uint64_t &Id) {
  http::Response Resp;
  std::string Error;
  if (!http::request(Port, "POST", "/v1/jobs", Body, Resp, Error)) {
    std::cerr << "error: submit failed: " << Error << "\n";
    std::exit(1);
  }
  Id = 0;
  json::Value Doc;
  if (Resp.Status == 202 && json::parse(Resp.Body, Doc, Error))
    Id = static_cast<uint64_t>(Doc.getNumber("id", 0.0));
  return Resp.Status;
}

/// Polls GET /v1/jobs/<id> until the job is done (aborts on failed /
/// cancelled — the bench's jobs must all succeed).
void waitDone(uint16_t Port, uint64_t Id) {
  for (;;) {
    http::Response Resp;
    std::string Error;
    if (!http::request(Port, "GET", "/v1/jobs/" + std::to_string(Id), "",
                       Resp, Error)) {
      std::cerr << "error: status poll failed: " << Error << "\n";
      std::exit(1);
    }
    json::Value Doc;
    if (Resp.Status == 200 && json::parse(Resp.Body, Doc, Error)) {
      const std::string State = Doc.getString("state", "");
      if (State == "done")
        return;
      if (State == "failed" || State == "cancelled") {
        std::cerr << "error: job " << Id << " " << State << ": "
                  << Doc.getString("error", "") << "\n";
        std::exit(1);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

double quantileMs(std::vector<double> Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  const size_t Idx = std::min(
      Sorted.size() - 1,
      static_cast<size_t>(Q * static_cast<double>(Sorted.size())));
  return Sorted[Idx] * 1e3;
}

struct ThroughputResult {
  double JobsPerSec = 0.0;
  double P50Ms = 0.0;
  double P99Ms = 0.0;
  double WallSeconds = 0.0;
};

/// One full throughput run through the serving path with job tracing
/// switched to \p Tracing. Exits the process on any serving error (the
/// bench's jobs must all succeed).
ThroughputResult runThroughput(bool Tracing, size_t NumJobs,
                               const std::string &CheckpointDir) {
  serve::setJobTracingEnabled(Tracing);
  serve::JobQueue Queue(256);
  serve::JobRunnerConfig RC;
  RC.Workers = 2;
  RC.Threads = 1;
  RC.CheckpointEvery = 4;
  RC.CheckpointDir = CheckpointDir;
  serve::JobRunner Runner(Queue, RC);
  serve::ServeServer Server(Queue, Runner);
  if (!Server.start())
    std::exit(1);
  Runner.start();

  // Warmup: the first job trains (or loads) the pooled victim; keep that
  // cost out of the serving numbers. Cheap after the first run — the
  // victim pool is process-wide.
  {
    uint64_t WarmId = 0;
    if (submitJob(Server.port(), jobBody(0), WarmId) != 202 || !WarmId)
      std::exit(1);
    waitDone(Server.port(), WarmId);
  }

  const auto T0 = Clock::now();
  std::vector<std::pair<uint64_t, Clock::time_point>> Pending;
  Pending.reserve(NumJobs);
  for (size_t I = 0; I != NumJobs; ++I) {
    uint64_t Id = 0;
    if (submitJob(Server.port(), jobBody(I), Id) != 202 || !Id) {
      std::cerr << "error: throughput submission rejected\n";
      std::exit(1);
    }
    Pending.emplace_back(Id, Clock::now());
  }

  std::vector<double> LatencySeconds;
  LatencySeconds.reserve(NumJobs);
  for (const auto &[Id, Submitted] : Pending) {
    waitDone(Server.port(), Id);
    LatencySeconds.push_back(
        std::chrono::duration<double>(Clock::now() - Submitted).count());
  }
  ThroughputResult R;
  R.WallSeconds =
      std::chrono::duration<double>(Clock::now() - T0).count();
  Server.stop();
  Runner.stop();

  std::sort(LatencySeconds.begin(), LatencySeconds.end());
  R.JobsPerSec = R.WallSeconds > 0
                     ? static_cast<double>(NumJobs) / R.WallSeconds
                     : 0.0;
  R.P50Ms = quantileMs(LatencySeconds, 0.50);
  R.P99Ms = quantileMs(LatencySeconds, 0.99);
  return R;
}

} // namespace

int main(int argc, char **argv) {
  const ArgParse Args(argc, argv);
  if (!telemetry::configureFromArgs(Args))
    return 1;
  const BenchScale Scale = BenchScale::fromEnv();
  // Enough jobs that one run's wall clock dwarfs scheduler jitter — the
  // traced/untraced comparison divides two of these.
  const size_t NumJobs = Scale.Name == "smoke"   ? 64
                         : Scale.Name == "paper" ? 128
                                                 : 96;

  std::cout << "== Serve throughput (scale: " << Scale.Name << ", "
            << NumJobs << " jobs) ==\n\n";

  // --- Phase 1: admission control at saturation. -----------------------
  // A workerless runner never drains the queue, so submissions beyond the
  // capacity MUST come back 429 — deterministically.
  constexpr size_t Capacity = 4;
  constexpr size_t Overflow = 3;
  size_t Rejects = 0;
  {
    serve::JobQueue Queue(Capacity);
    serve::JobRunnerConfig RC;
    RC.Workers = 0;
    RC.CheckpointDir = "serve-bench-admission";
    serve::JobRunner Runner(Queue, RC);
    serve::ServeServer Server(Queue, Runner);
    if (!Server.start())
      return 1;
    for (size_t I = 0; I != Capacity + Overflow; ++I) {
      uint64_t Id = 0;
      const int Status = submitJob(Server.port(), jobBody(I), Id);
      if (Status == 429)
        ++Rejects;
      else if (Status != 202) {
        std::cerr << "error: unexpected submit status " << Status << "\n";
        return 1;
      }
    }
    Server.stop();
    Runner.stop();
  }
  std::cout << "admission: capacity " << Capacity << ", submitted "
            << (Capacity + Overflow) << ", rejected " << Rejects
            << " (want " << Overflow << ")\n";
  if (Rejects != Overflow) {
    std::cerr << "error: admission control is not deterministic\n";
    return 1;
  }

  // --- Phase 2: throughput through the full serving path, traced and
  // untraced. Modes interleave across repeats so slow thermal/scheduler
  // drift hits both equally; each mode keeps its best repeat.
  const size_t Repeats = 4;
  ThroughputResult Traced, Untraced;
  double OverheadPct = 100.0;
  for (size_t R = 0; R != Repeats; ++R) {
    const ThroughputResult On =
        runThroughput(true, NumJobs, "serve-bench-ckpt");
    if (On.JobsPerSec > Traced.JobsPerSec)
      Traced = On;
    const ThroughputResult Off =
        runThroughput(false, NumJobs, "serve-bench-ckpt-notrace");
    if (Off.JobsPerSec > Untraced.JobsPerSec)
      Untraced = Off;
    // Overhead comes from the adjacent pair, not the cross-repeat bests:
    // a real tracing cost slows EVERY pair, so the min across pairs is
    // it, while a one-off scheduler stall only poisons one pair. Tracing
    // can only add work, so a negative delta is noise — clamp to zero
    // instead of reporting a nonsense "speedup".
    const double PairPct =
        Off.JobsPerSec > 0.0
            ? std::max(0.0, 100.0 * (Off.JobsPerSec - On.JobsPerSec) /
                                Off.JobsPerSec)
            : 0.0;
    OverheadPct = std::min(OverheadPct, PairPct);
  }
  serve::setJobTracingEnabled(true); // restore the shipping default

  std::cout << "throughput (traced): " << NumJobs << " jobs in "
            << Traced.WallSeconds << " s = " << Traced.JobsPerSec
            << " jobs/sec\n"
            << "throughput (untraced): " << Untraced.JobsPerSec
            << " jobs/sec -> trace overhead " << OverheadPct << "%\n"
            << "latency (traced): p50 " << Traced.P50Ms << " ms, p99 "
            << Traced.P99Ms << " ms\n";

  BenchJson BJ("serve", Scale.Name, Args);
  BJ.set("jobs", static_cast<double>(NumJobs));
  BJ.set("jobs_per_sec", Traced.JobsPerSec);
  BJ.set("jobs_per_sec_untraced", Untraced.JobsPerSec);
  BJ.set("trace_overhead_pct", OverheadPct);
  BJ.set("job_latency_p50_ms", Traced.P50Ms);
  BJ.set("job_latency_p99_ms", Traced.P99Ms);
  BJ.set("queue_full_rejects", static_cast<double>(Rejects));
  BJ.set("wall_seconds", Traced.WallSeconds);
  BJ.addTelemetryCounters();
  if (!BJ.writeFromArgs(Args))
    return 1;
  return 0;
}
