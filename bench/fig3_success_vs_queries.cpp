//===- bench/fig3_success_vs_queries.cpp - Reproduces Figure 3 ---------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 3 of the paper: success rate at query budgets (<=100, <=500,
// <=10000) for OPPSLA vs Sparse-RS vs SuOPA, on three CIFAR-like victims
// and two ImageNet-like victims. The paper's qualitative shape:
//
//   - OPPSLA dominates at small budgets (<=100) by a wide margin;
//   - the baselines close much of the gap at large budgets, but OPPSLA
//     stays on top;
//   - ImageNet victims have a pair space far larger than the budget, so
//     absolute rates drop for the search baselines.
//
// Honors OPPSLA_BENCH_SCALE (smoke|small|paper). One attack run per test
// image at the maximum budget yields the full success-rate curve via the
// prefix property (see eval/Evaluation.h).
//
//===----------------------------------------------------------------------===//

#include "attacks/SketchAttack.h"
#include "attacks/SparseRS.h"
#include "attacks/SuOPA.h"
#include "eval/Evaluation.h"
#include "eval/Experiments.h"
#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <iostream>

using namespace oppsla;

namespace {

void runTask(TaskKind Task, const std::vector<Arch> &Archs,
             const BenchScale &Scale, size_t Threads) {
  const std::vector<uint64_t> Budgets = {100, 500, Scale.EvalQueryCap};
  std::vector<std::string> Header = {"classifier", "attack"};
  for (uint64_t B : Budgets)
    Header.push_back("success@" + std::to_string(B));
  Header.emplace_back("avg #q (succ)");
  Table T(std::move(Header));

  const Dataset Test = makeTestSet(Task, Scale);
  for (Arch A : Archs) {
    auto Victim = makeScaledVictim(Task, A, Scale);
    logInfo() << "fig3: evaluating " << Victim->name() << " over "
              << Test.size() << " test images";

    // OPPSLA: per-class synthesized programs.
    const std::vector<Program> Programs = synthesizeClassPrograms(
        *Victim, victimStem(Task, A, Scale), Task, Scale, /*Seed=*/1,
        Threads);
    const auto OppslaLogs = runProgramsOverSet(Programs, *Victim, Test,
                                               Scale.EvalQueryCap, Threads);

    SparseRS Rs;
    const auto RsLogs =
        runAttackOverSet(Rs, *Victim, Test, Scale.EvalQueryCap, Threads);

    SuOPAConfig DeConfig;
    // Keep Su et al.'s defining trait (population >= the minimum query
    // count) while fitting the budget at reduced scales.
    DeConfig.PopulationSize =
        std::min<size_t>(400, std::max<size_t>(20, Scale.EvalQueryCap / 10));
    SuOPA De(DeConfig);
    const auto DeLogs =
        runAttackOverSet(De, *Victim, Test, Scale.EvalQueryCap, Threads);

    const struct {
      const char *Name;
      const std::vector<AttackRunLog> &Logs;
    } Rows[] = {{"OPPSLA", OppslaLogs},
                {"Sparse-RS", RsLogs},
                {"SuOPA", DeLogs}};
    for (const auto &Row : Rows) {
      std::vector<std::string> Cells = {Victim->name(), Row.Name};
      for (uint64_t B : Budgets)
        Cells.push_back(
            Table::fmt(100.0 * successRateAt(Row.Logs, B), 1) + "%");
      Cells.push_back(Table::fmt(toQuerySample(Row.Logs).avgQueries(), 1));
      T.addRow(std::move(Cells));
    }
  }
  T.print(std::cout);
  std::cout << "\n";
}

} // namespace

int main(int argc, char **argv) {
  // --trace-out / --metrics-out / --layer-timing (see support/Metrics.h).
  const ArgParse Args(argc, argv);
  if (!telemetry::configureFromArgs(Args))
    return 1;
  const auto BenchStart = std::chrono::steady_clock::now();
  const BenchScale Scale = BenchScale::fromEnv();
  const size_t Threads = threadCountFromArgs(Args);
  std::cout << "== Figure 3: success rate vs query budget (scale: "
            << Scale.Name << ") ==\n\n";
  std::cout << "-- CIFAR-like victims --\n";
  runTask(TaskKind::CifarLike, cifarArchs(), Scale, Threads);
  std::cout << "-- ImageNet-like victims --\n";
  runTask(TaskKind::ImageNetLike, imageNetArchs(), Scale, Threads);
  std::cout << "Expected shape (paper): OPPSLA >= baselines at every "
               "budget;\nthe gap is largest at <=100 queries; baselines "
               "approach OPPSLA\nonly at the largest budgets.\n";

  BenchJson BJ("fig3_success_vs_queries", Scale.Name, Args);
  BJ.set("wall_seconds",
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       BenchStart)
             .count());
  BJ.addTelemetryCounters();
  if (!BJ.writeFromArgs(Args))
    return 1;
  telemetry::finalizeTelemetry();
  return 0;
}
