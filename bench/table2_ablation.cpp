//===- bench/table2_ablation.cpp - Reproduces Table 2 (Appendix C) ------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 2 of the paper: the contribution of (a) the synthesized conditions
// and (b) the stochastic search, on the three CIFAR classifiers:
//
//   - OPPSLA           : MH-synthesized programs
//   - Sketch+False     : all conditions false (fixed prioritization)
//   - Sketch+Random    : best of N randomly sampled programs
//   - Sparse-RS        : the external baseline
//
// Reported: average and median #queries over successful attacks. All
// sketch variants share the same success rate (every instantiation is
// exhaustive). Expected ordering (paper): OPPSLA < Sketch+Random <
// Sketch+False < Sparse-RS on average queries.
//
//===----------------------------------------------------------------------===//

#include "attacks/SparseRS.h"
#include "eval/Evaluation.h"
#include "eval/Experiments.h"
#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <filesystem>
#include <iostream>
#include <sstream>

using namespace oppsla;

namespace {

std::string cacheDir() {
  if (const char *Env = std::getenv("OPPSLA_CACHE_DIR"))
    return Env;
  return ".oppsla-cache";
}

/// Synthesizes (or loads) the Sketch+Random per-class baselines: the best
/// of Scale.SynthIters uniformly sampled programs per class — the same
/// sampling budget the paper grants (one random program per MH iteration).
std::vector<Program> randomBaselinePrograms(NNClassifier &Victim,
                                            const std::string &Stem,
                                            TaskKind Task,
                                            const BenchScale &Scale,
                                            size_t Threads) {
  std::vector<Program> Programs;
  std::error_code EC;
  std::filesystem::create_directories(cacheDir(), EC);
  for (size_t Label = 0; Label != Scale.NumClasses; ++Label) {
    std::ostringstream Key;
    Key << cacheDir() << "/rand_" << Stem << "_cls" << Label << "_i"
        << Scale.SynthIters << "_t" << Scale.TrainPerClass << ".txt";
    Program P;
    if (loadProgram(P, Key.str())) {
      Programs.push_back(P);
      continue;
    }
    const Dataset Train = makeSynthesisSet(Task, Label, Scale);
    logInfo() << "table2: random-search baseline for class " << Label;
    P = randomSearchProgram(Victim, Train, Scale.SynthIters,
                            Scale.SynthQueryCap,
                            /*Seed=*/0xabc123 + Label, Threads);
    saveProgram(P, Key.str());
    Programs.push_back(P);
  }
  return Programs;
}

} // namespace

int main(int argc, char **argv) {
  // --trace-out / --metrics-out / --layer-timing (see support/Metrics.h).
  const ArgParse Args(argc, argv);
  if (!telemetry::configureFromArgs(Args))
    return 1;
  const auto BenchStart = std::chrono::steady_clock::now();
  const BenchScale Scale = BenchScale::fromEnv();
  const size_t Threads = threadCountFromArgs(Args);
  std::cout << "== Table 2: conditions & search ablation (scale: "
            << Scale.Name << ") ==\n\n";

  const TaskKind Task = TaskKind::CifarLike;
  const Dataset Test = makeTestSet(Task, Scale);
  Table T({"classifier", "approach", "avg #queries", "median #queries",
           "success rate"});

  for (Arch A : cifarArchs()) {
    auto Victim = makeScaledVictim(Task, A, Scale);
    const std::string Stem = victimStem(Task, A, Scale);

    const std::vector<Program> Synthesized = synthesizeClassPrograms(
        *Victim, Stem, Task, Scale, /*Seed=*/1, Threads);
    const std::vector<Program> FalseProgs(Scale.NumClasses,
                                          allFalseProgram());
    const std::vector<Program> RandomProgs =
        randomBaselinePrograms(*Victim, Stem, Task, Scale, Threads);

    struct RowSpec {
      const char *Name;
      const std::vector<Program> *Programs; ///< null => Sparse-RS
    };
    const RowSpec Rows[] = {{"OPPSLA", &Synthesized},
                            {"Sketch+False", &FalseProgs},
                            {"Sketch+Random", &RandomProgs},
                            {"Sparse-RS", nullptr}};
    for (const RowSpec &Row : Rows) {
      logInfo() << "table2: " << Row.Name << " on " << Victim->name();
      std::vector<AttackRunLog> Logs;
      if (Row.Programs) {
        Logs = runProgramsOverSet(*Row.Programs, *Victim, Test,
                                  Scale.EvalQueryCap, Threads);
      } else {
        SparseRS Rs;
        Logs = runAttackOverSet(Rs, *Victim, Test, Scale.EvalQueryCap,
                                Threads);
      }
      const QuerySample S = toQuerySample(Logs);
      T.addRow({Victim->name(), Row.Name, Table::fmt(S.avgQueries(), 2),
                Table::fmt(S.medianQueries(), 1),
                Table::fmt(100.0 * S.successRate(), 1) + "%"});
    }
  }

  T.print(std::cout);
  std::cout << "\nExpected shape (paper): OPPSLA < Sketch+Random < "
               "Sketch+False < Sparse-RS\non average queries; all sketch "
               "variants share one success rate.\n";

  BenchJson BJ("table2_ablation", Scale.Name, Args);
  BJ.set("wall_seconds",
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       BenchStart)
             .count());
  BJ.addTelemetryCounters();
  if (!BJ.writeFromArgs(Args))
    return 1;
  telemetry::finalizeTelemetry();
  return 0;
}
