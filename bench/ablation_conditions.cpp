//===- bench/ablation_conditions.cpp - Extra ablations beyond the paper -------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Two ablations that extend the paper's Appendix C:
//
//  (1) Per-condition ablation: starting from a synthesized program,
//      disable each condition B_i (replace with the canonical False) and
//      measure the average query count — which of the four reordering
//      rules carries the improvement?
//
//  (2) Training-robustness ablation: the same architecture trained with
//      flip/translate/cutout augmentation; how much harder does the victim
//      become for one pixel attacks (success rate and queries)?
//
// Both honor OPPSLA_BENCH_SCALE.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "eval/Evaluation.h"
#include "eval/Experiments.h"
#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <iostream>

using namespace oppsla;

namespace {

void perConditionAblation(const BenchScale &Scale, size_t Threads) {
  std::cout << "-- (1) per-condition ablation (MiniResNet) --\n\n";
  const TaskKind Task = TaskKind::CifarLike;
  auto Victim = makeScaledVictim(Task, Arch::MiniResNet, Scale);
  const std::vector<Program> Programs = synthesizeClassPrograms(
      *Victim, victimStem(Task, Arch::MiniResNet, Scale), Task, Scale,
      /*Seed=*/1, Threads);
  const Dataset Test = makeTestSet(Task, Scale);

  Table T({"variant", "avg #queries", "median #queries"});
  auto Measure = [&](const std::string &Name,
                     const std::vector<Program> &Ps) {
    logInfo() << "ablation: " << Name;
    const auto Logs = runProgramsOverSet(Ps, *Victim, Test,
                                         Scale.EvalQueryCap, Threads);
    const QuerySample S = toQuerySample(Logs);
    T.addRow({Name, Table::fmt(S.avgQueries(), 2),
              Table::fmt(S.medianQueries(), 1)});
  };

  Measure("synthesized (all four conditions)", Programs);
  const Program False = allFalseProgram();
  for (size_t Drop = 0; Drop != 4; ++Drop) {
    std::vector<Program> Variant = Programs;
    for (Program &P : Variant)
      P.Conds[Drop] = False.Conds[Drop];
    Measure("without B" + std::to_string(Drop + 1), Variant);
  }
  Measure("all-False (fixed prioritization)",
          std::vector<Program>(Scale.NumClasses, False));
  T.print(std::cout);
  std::cout << "\nFirst synthesized program, analyzed:\n"
            << explainProgram(Programs.front(),
                              taskSide(Task, Scale))
            << "\n";
}

void robustnessAblation(const BenchScale &Scale, size_t Threads) {
  std::cout << "-- (2) augmented-training robustness ablation "
               "(MiniResNet) --\n\n";
  const TaskKind Task = TaskKind::CifarLike;
  const Dataset Test = makeTestSet(Task, Scale);

  Table T({"victim training", "test attack success", "avg #queries"});
  for (const bool Augmented : {false, true}) {
    VictimSpec Spec;
    Spec.Task = Task;
    Spec.Architecture = Arch::MiniResNet;
    Spec.NumClasses = 10;
    Spec.TrainImagesPerClass =
        std::max<size_t>(1, Scale.ClassifierTrainSet / 10);
    Spec.Side = taskSide(Task, Scale);
    Spec.Train.Epochs = Scale.TrainEpochs;
    if (Augmented) {
      Spec.Train.UseAugment = true;
      Spec.Train.Augment.CutoutPatch = 3;
    }
    auto Victim = makeVictim(Spec);

    // Attack with the fixed-prioritization sketch (no synthesis, so the
    // comparison isolates the victim's robustness).
    const std::vector<Program> Fixed(Scale.NumClasses, allFalseProgram());
    const auto Logs = runProgramsOverSet(Fixed, *Victim, Test,
                                         Scale.EvalQueryCap, Threads);
    const QuerySample S = toQuerySample(Logs);
    T.addRow({Augmented ? "flips+translate+cutout" : "plain (paper-like)",
              Table::fmt(100.0 * S.successRate(), 1) + "%",
              Table::fmt(S.avgQueries(), 1)});
  }
  T.print(std::cout);
  std::cout << "\nExpected: augmentation (cutout especially) lowers one "
               "pixel attack success.\n";
}

} // namespace

int main(int argc, char **argv) {
  // --trace-out / --metrics-out / --layer-timing (see support/Metrics.h).
  const ArgParse Args(argc, argv);
  if (!telemetry::configureFromArgs(Args))
    return 1;
  const auto BenchStart = std::chrono::steady_clock::now();
  const BenchScale Scale = BenchScale::fromEnv();
  const size_t Threads = threadCountFromArgs(Args);
  std::cout << "== Extended ablations (scale: " << Scale.Name << ") ==\n\n";
  perConditionAblation(Scale, Threads);
  robustnessAblation(Scale, Threads);

  BenchJson BJ("ablation_conditions", Scale.Name, Args);
  BJ.set("wall_seconds",
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       BenchStart)
             .count());
  BJ.addTelemetryCounters();
  if (!BJ.writeFromArgs(Args))
    return 1;
  telemetry::finalizeTelemetry();
  return 0;
}
