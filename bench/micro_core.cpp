//===- bench/micro_core.cpp - Microbenchmarks for the core library ------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the attack-side data structures:
// pair space construction/ordering, queue operations (the DESIGN.md §5.1
// ablation: intrusive linked queue vs a naive vector queue), condition
// evaluation, and a full sketch sweep against a trivial classifier (pure
// orchestration overhead, no CNN).
//
//===----------------------------------------------------------------------===//

#include "core/Mutation.h"
#include "core/Sketch.h"
#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/BenchScale.h"
#include "support/Metrics.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>

using namespace oppsla;

namespace {

Image randomImage(size_t Side, uint64_t Seed) {
  Rng R(Seed);
  Image Img(Side, Side);
  for (float &V : Img.raw())
    V = R.uniformF();
  return Img;
}

void BM_PairSpaceConstruct(benchmark::State &State) {
  const Image X = randomImage(static_cast<size_t>(State.range(0)), 1);
  for (auto _ : State) {
    PairSpace Space(X);
    benchmark::DoNotOptimize(Space.size());
  }
}
BENCHMARK(BM_PairSpaceConstruct)->Arg(16)->Arg(32)->Arg(64);

void BM_PairSpaceInitialOrder(benchmark::State &State) {
  const Image X = randomImage(static_cast<size_t>(State.range(0)), 2);
  const PairSpace Space(X);
  for (auto _ : State) {
    auto Order = Space.initialOrder();
    benchmark::DoNotOptimize(Order.data());
  }
}
BENCHMARK(BM_PairSpaceInitialOrder)->Arg(16)->Arg(32)->Arg(64);

void BM_PairQueueChurn(benchmark::State &State) {
  const Image X = randomImage(32, 3);
  const PairSpace Space(X);
  const auto Order = Space.initialOrder();
  Rng R(4);
  for (auto _ : State) {
    PairQueue Q(Order, Space.size());
    // Mix of the operations the sketch performs.
    while (Q.size() > 8) {
      const PairId Front = Q.popFront();
      benchmark::DoNotOptimize(Front);
      for (int K = 0; K != 3; ++K) {
        const PairId Id = static_cast<PairId>(R.bounded(Space.size()));
        if (Q.contains(Id))
          Q.pushBack(Id);
      }
      const PairId Id = static_cast<PairId>(R.bounded(Space.size()));
      if (Q.contains(Id))
        Q.remove(Id);
    }
  }
}
BENCHMARK(BM_PairQueueChurn);

/// Naive reference queue built on std::vector erase/push_back, for the
/// DESIGN.md queue-representation ablation.
void BM_NaiveVectorQueueChurn(benchmark::State &State) {
  const Image X = randomImage(32, 3);
  const PairSpace Space(X);
  const auto Order = Space.initialOrder();
  Rng R(4);
  for (auto _ : State) {
    std::vector<PairId> Q = Order;
    while (Q.size() > 8) {
      const PairId Front = Q.front();
      Q.erase(Q.begin());
      benchmark::DoNotOptimize(Front);
      for (int K = 0; K != 3; ++K) {
        const PairId Id = static_cast<PairId>(R.bounded(Space.size()));
        auto It = std::find(Q.begin(), Q.end(), Id);
        if (It != Q.end()) {
          Q.erase(It);
          Q.push_back(Id);
        }
      }
      const PairId Id = static_cast<PairId>(R.bounded(Space.size()));
      auto It = std::find(Q.begin(), Q.end(), Id);
      if (It != Q.end())
        Q.erase(It);
    }
  }
}
BENCHMARK(BM_NaiveVectorQueueChurn);

void BM_ConditionEval(benchmark::State &State) {
  const Program P = paperExampleProgram();
  CondEnv Env;
  Env.OriginalPixel = Pixel{0.3f, 0.6f, 0.1f};
  Env.PerturbPixel = cornerPixel(5);
  Env.ScoreDiff = 0.22;
  Env.CenterDist = 7.0;
  for (auto _ : State) {
    bool Acc = false;
    for (const Condition &C : P.Conds)
      Acc ^= evalCondition(C, Env);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_ConditionEval);

void BM_MutateProgram(benchmark::State &State) {
  MutationContext Ctx{32};
  Rng R(7);
  Program P = randomProgram(Ctx, R);
  for (auto _ : State) {
    P = mutateProgram(P, Ctx, R);
    benchmark::DoNotOptimize(P.Conds[0].Threshold);
  }
}
BENCHMARK(BM_MutateProgram);

/// Trivial always-robust classifier isolates sketch orchestration cost.
class NullClassifier : public Classifier {
public:
  std::vector<float> scores(const Image &) override {
    return {0.9f, 0.1f};
  }
  size_t numClasses() const override { return 2; }
};

void BM_SketchFullSweep(benchmark::State &State) {
  const Image X = randomImage(static_cast<size_t>(State.range(0)), 8);
  NullClassifier N;
  const Sketch Sk(paperExampleProgram());
  for (auto _ : State) {
    const SketchResult R = Sk.run(N, X, 0);
    benchmark::DoNotOptimize(R.Queries);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(X.numPixels() * 8));
}
BENCHMARK(BM_SketchFullSweep)->Arg(16)->Arg(32);

/// Console reporter that additionally captures each benchmark's adjusted
/// real time (in its display time unit, ns by default) so main() can fold
/// the results into the standard BENCH_<name>.json artifact.
class CaptureReporter : public benchmark::ConsoleReporter {
public:
  std::map<std::string, double> Times;

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      if (!R.error_occurred && !R.report_big_o && !R.report_rms)
        Times[R.benchmark_name()] = R.GetAdjustedRealTime();
    ConsoleReporter::ReportRuns(Runs);
  }
};

} // namespace

// Custom main: accepts the standard telemetry flags (stripped before argv
// reaches google-benchmark) so sketch-sweep query traces can be captured.
int main(int argc, char **argv) {
  const ArgParse Args(argc, argv);
  if (!oppsla::telemetry::configureFromArgs(Args))
    return 1;

  std::vector<char *> BenchArgv;
  for (int I = 0; I != argc; ++I) {
    const char *A = argv[I];
    // "--profile" also matches "--profile-out", "--stats-port" also
    // matches "--stats-port-file"; all of them are ours, not benchmark's.
    const bool Telemetry = std::strncmp(A, "--layer-timing", 14) == 0 ||
                           std::strncmp(A, "--metrics-out", 13) == 0 ||
                           std::strncmp(A, "--trace-out", 11) == 0 ||
                           std::strncmp(A, "--json-out", 10) == 0 ||
                           std::strncmp(A, "--profile", 9) == 0 ||
                           std::strncmp(A, "--progress", 10) == 0 ||
                           std::strncmp(A, "--stats-port", 12) == 0 ||
                           std::strncmp(A, "--stats-linger", 14) == 0 ||
                           std::strncmp(A, "--repeat", 8) == 0 ||
                           std::strncmp(A, "--hw-counters", 13) == 0 ||
                           std::strncmp(A, "--ledger", 8) == 0;
    if (Telemetry) {
      if (std::strchr(A, '=') == nullptr && I + 1 < argc &&
          std::strncmp(argv[I + 1], "--", 2) != 0)
        ++I;
      continue;
    }
    BenchArgv.push_back(argv[I]);
  }
  int BenchArgc = static_cast<int>(BenchArgv.size());
  benchmark::Initialize(&BenchArgc, BenchArgv.data());
  CaptureReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  BenchJson BJ("micro_core", BenchScale::fromEnv().Name, Args);
  for (const auto &[Name, RealTime] : Reporter.Times)
    BJ.set(Name + "_ns", RealTime);
  if (!BJ.writeFromArgs(Args))
    return 1;
  oppsla::telemetry::finalizeTelemetry();
  return 0;
}
