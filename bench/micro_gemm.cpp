//===- bench/micro_gemm.cpp - Packed SGEMM microbenchmark ---------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// GFLOP/s of the packed, register-blocked GEMM (tensor/Gemm.h) against the
// scalar reference matmul, at the conv shapes the zoo actually lowers to:
// M = OutC, K = InC*KH*KW, N = Batch*OH*OW. Each timed iteration includes
// the A-panel repack, matching what Conv2d::forward pays per call. Emits
// BENCH_gemm.json (schema 2) for the bench ledger; `peak_gflops` is the
// gate_manifest.json ratio-ruled headline, so a kernel regression fails
// `ctest -R bench_gate` once the artifact is ingested.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/BenchScale.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "tensor/Gemm.h"
#include "tensor/TensorOps.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

using namespace oppsla;

namespace {

struct GemmShape {
  size_t M, K, N;
  const char *What; // which zoo conv this shape comes from
};

std::string key(const GemmShape &S) {
  std::ostringstream O;
  O << S.M << "x" << S.K << "x" << S.N;
  return O.str();
}

/// Best-of-\p Repeats GFLOP/s for \p Body, each repeat looping until it
/// has run at least \p MinSeconds.
template <typename Fn>
double bestGflops(const GemmShape &S, size_t Repeats, double MinSeconds,
                  Fn &&Body) {
  const double Flops = 2.0 * S.M * S.K * S.N;
  double Best = 0.0;
  for (size_t R = 0; R != Repeats; ++R) {
    size_t Iters = 0;
    const auto Start = std::chrono::steady_clock::now();
    double Elapsed = 0.0;
    do {
      Body();
      ++Iters;
      Elapsed = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    } while (Elapsed < MinSeconds);
    Best = std::max(Best, Flops * Iters / Elapsed / 1e9);
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  const ArgParse Args(argc, argv);
  kernels::configureFromArgs(Args);
  const BenchScale Scale = BenchScale::fromEnv();
  const size_t Repeats = Scale.Name == "smoke" ? 2 : 5;
  const double MinSeconds = Scale.Name == "smoke" ? 0.02 : 0.2;

  // M = OutC, K = InC*KH*KW, N = Batch*OH*OW for the lowered convs.
  const GemmShape Shapes[] = {
      {16, 27, 1024, "stem 3x3, 3->16, batch 4 @ 16x16"},
      {16, 144, 1024, "body 3x3, 16->16, batch 4 @ 16x16"},
      {32, 288, 256, "strided 3x3, 32->32, batch 4 @ 8x8"},
      {64, 576, 64, "deepest 3x3, 64->64, batch 4 @ 4x4"},
  };

  std::cout << "== Packed SGEMM vs scalar reference (scale: " << Scale.Name
            << ", best of " << Repeats << ") ==\n\n";

  BenchJson BJ("gemm", Scale.Name, Args);
  Table T({"shape MxKxN", "conv", "fast GF/s", "naive GF/s", "speedup"});
  double PeakFast = 0.0, PeakSpeedup = 0.0;
  for (const GemmShape &S : Shapes) {
    Rng R(0xBEEF + S.K);
    const Tensor A = Tensor::randn({S.M, S.K}, R);
    const Tensor B = Tensor::randn({S.K, S.N}, R);
    Tensor C({S.M, S.N});
    std::vector<float> Pack(gemmPackedSize(S.M, S.K));

    const double Fast = bestGflops(S, Repeats, MinSeconds, [&] {
      gemmPackA(A.data(), S.M, S.K, Pack.data());
      gemmPacked(Pack.data(), B.data(), C.data(), S.M, S.K, S.N,
                 GemmEpilogue{});
    });
    const double Naive = bestGflops(S, Repeats, MinSeconds,
                                    [&] { matmul(A, B, C); });
    const double Speedup = Naive > 0 ? Fast / Naive : 0.0;
    PeakFast = std::max(PeakFast, Fast);
    PeakSpeedup = std::max(PeakSpeedup, Speedup);

    T.addRow({key(S), S.What, Table::fmt(Fast, 2), Table::fmt(Naive, 2),
              Table::fmt(Speedup, 2) + "x"});
    BJ.set("fast_gflops." + key(S), Fast);
    BJ.set("naive_gflops." + key(S), Naive);
    BJ.set("speedup." + key(S), Speedup);
  }
  T.print(std::cout);

  BJ.set("peak_gflops", PeakFast);
  BJ.set("peak_speedup_vs_naive", PeakSpeedup);
  if (!BJ.writeFromArgs(Args))
    return 1;
  return 0;
}
