//===- bench/table1_transferability.cpp - Reproduces Table 1 ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 1 of the paper: transferability of adversarial programs across
// CIFAR classifiers. Programs are synthesized once per (classifier,
// class) and then used to attack *other* classifiers; the metric is the
// average number of queries over successful attacks. The paper's shape:
// off-diagonal entries stay within a small factor of the diagonal (the
// programs encode network-agnostic prioritization knowledge), with the
// GoogLeNet-synthesized programs transferring worst.
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"
#include "eval/Experiments.h"
#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <iostream>

using namespace oppsla;

int main(int argc, char **argv) {
  // --trace-out / --metrics-out / --layer-timing (see support/Metrics.h).
  const ArgParse Args(argc, argv);
  if (!telemetry::configureFromArgs(Args))
    return 1;
  const auto BenchStart = std::chrono::steady_clock::now();
  const BenchScale Scale = BenchScale::fromEnv();
  const size_t Threads = threadCountFromArgs(Args);
  std::cout << "== Table 1: transferability (avg #queries; scale: "
            << Scale.Name << ") ==\n\n";

  const TaskKind Task = TaskKind::CifarLike;
  const std::vector<Arch> &Archs = cifarArchs();
  const Dataset Test = makeTestSet(Task, Scale);

  // Victims and their synthesized per-class programs.
  std::vector<std::unique_ptr<NNClassifier>> Victims;
  std::vector<std::vector<Program>> ProgramSets;
  for (Arch A : Archs) {
    Victims.push_back(makeScaledVictim(Task, A, Scale));
    ProgramSets.push_back(synthesizeClassPrograms(
        *Victims.back(), victimStem(Task, A, Scale), Task, Scale,
        /*Seed=*/1, Threads));
  }

  std::vector<std::string> Header = {"target \\ synthesized for"};
  for (Arch A : Archs)
    Header.emplace_back(archName(A));
  Table AvgT(Header), RateT(Header);

  for (size_t Target = 0; Target != Victims.size(); ++Target) {
    std::vector<std::string> AvgRow = {archName(Archs[Target])};
    std::vector<std::string> RateRow = {archName(Archs[Target])};
    for (size_t Source = 0; Source != ProgramSets.size(); ++Source) {
      logInfo() << "table1: programs(" << archName(Archs[Source])
                << ") -> target " << archName(Archs[Target]);
      const auto Logs =
          runProgramsOverSet(ProgramSets[Source], *Victims[Target], Test,
                             Scale.EvalQueryCap, Threads);
      const QuerySample S = toQuerySample(Logs);
      AvgRow.push_back(Table::fmt(S.avgQueries(), 2));
      RateRow.push_back(Table::fmt(100.0 * S.successRate(), 1) + "%");
    }
    AvgT.addRow(std::move(AvgRow));
    RateT.addRow(std::move(RateRow));
  }

  std::cout << "Average #queries over successful attacks "
               "(diagonal = programs on their own classifier):\n";
  AvgT.print(std::cout);
  std::cout << "\nSuccess rates (independent of which program is used — "
               "every sketch instantiation is exhaustive):\n";
  RateT.print(std::cout);
  std::cout << "\nExpected shape (paper): off-diagonal avg queries within "
               "a small factor\n(~1.2-2x) of the diagonal.\n";

  BenchJson BJ("table1_transferability", Scale.Name, Args);
  BJ.set("wall_seconds",
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       BenchStart)
             .count());
  BJ.set("victims", static_cast<double>(Victims.size()));
  BJ.addTelemetryCounters();
  if (!BJ.writeFromArgs(Args))
    return 1;
  telemetry::finalizeTelemetry();
  return 0;
}
