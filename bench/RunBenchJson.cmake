# Runs one bench binary with --json-out and validates the standard
# BENCH_<name>.json artifact: it must parse as JSON, carry the expected
# name/scale, and have a non-empty flat numeric metrics map.
#
# Inputs: BENCH (binary path), NAME (expected "name" field), WORK_DIR,
# optional EXTRA (space-separated extra argv, e.g. a benchmark filter).
file(MAKE_DIRECTORY ${WORK_DIR})
set(OUT_JSON ${WORK_DIR}/BENCH_${NAME}.json)
file(REMOVE ${OUT_JSON})
if(DEFINED EXTRA)
  separate_arguments(EXTRA_ARGS UNIX_COMMAND "${EXTRA}")
else()
  set(EXTRA_ARGS "")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env OPPSLA_BENCH_SCALE=smoke
    OPPSLA_CACHE_DIR=${WORK_DIR}/cache
    ${BENCH} --json-out ${OUT_JSON} ${EXTRA_ARGS}
  WORKING_DIRECTORY ${WORK_DIR}
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "${NAME} failed with ${RC}: ${OUT}\n${ERR}")
endif()

if(NOT EXISTS ${OUT_JSON})
  message(FATAL_ERROR "--json-out produced no file at ${OUT_JSON}")
endif()
file(READ ${OUT_JSON} J)

# string(JSON) raises a hard error on malformed JSON or missing keys.
string(JSON GOT_SCHEMA GET "${J}" schema)
if(NOT GOT_SCHEMA EQUAL 2)
  message(FATAL_ERROR "artifact schema '${GOT_SCHEMA}' != 2")
endif()
string(JSON GOT_REPEAT GET "${J}" repeat)
if(GOT_REPEAT LESS 0)
  message(FATAL_ERROR "artifact repeat '${GOT_REPEAT}' must be >= 0")
endif()
string(JSON GOT_NAME GET "${J}" name)
if(NOT GOT_NAME STREQUAL "${NAME}")
  message(FATAL_ERROR "artifact name '${GOT_NAME}' != expected '${NAME}'")
endif()
string(JSON GOT_SCALE GET "${J}" scale)
if(NOT GOT_SCALE STREQUAL "smoke")
  message(FATAL_ERROR "artifact scale '${GOT_SCALE}' != 'smoke'")
endif()
string(JSON NUM_METRICS LENGTH "${J}" metrics)
if(NUM_METRICS EQUAL 0)
  message(FATAL_ERROR "artifact has an empty metrics map")
endif()
# Every metric value must be numeric (the schema is one flat number map).
math(EXPR LAST "${NUM_METRICS} - 1")
foreach(I RANGE 0 ${LAST})
  string(JSON KEY MEMBER "${J}" metrics ${I})
  string(JSON KIND TYPE "${J}" metrics "${KEY}")
  if(NOT KIND STREQUAL "NUMBER" AND NOT KIND STREQUAL "NULL")
    message(FATAL_ERROR "metric '${KEY}' has non-numeric type ${KIND}")
  endif()
endforeach()
message(STATUS "${NAME}: ${NUM_METRICS} metrics OK")
