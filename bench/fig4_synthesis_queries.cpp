//===- bench/fig4_synthesis_queries.cpp - Reproduces Figure 4 -----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 4 of the paper: how good do the intermediate (accepted) programs
// get as a function of the synthesis budget? OPPSLA synthesizes for one
// classifier (VGG) and one class; each accepted program is then evaluated
// on a held-out test set of that class, reporting the average number of
// attack queries (left plot: vs cumulative synthesis queries; right plot:
// vs iterations). The fixed-prioritization (all-False) program is the
// zero-synthesis-queries reference line. The paper's shape: a steep drop
// (~2.7x below the all-False program) within the first few iterations,
// then a long flat tail of marginal (<1%) improvements.
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"
#include "eval/Experiments.h"
#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <iostream>

using namespace oppsla;

int main(int argc, char **argv) {
  // --trace-out / --metrics-out / --layer-timing (see support/Metrics.h).
  const ArgParse Args(argc, argv);
  if (!telemetry::configureFromArgs(Args))
    return 1;
  const auto BenchStart = std::chrono::steady_clock::now();
  const BenchScale Scale = BenchScale::fromEnv();
  const size_t Threads = threadCountFromArgs(Args);
  std::cout << "== Figure 4: attack quality vs synthesis budget (scale: "
            << Scale.Name << ") ==\n\n";

  const TaskKind Task = TaskKind::CifarLike;
  const size_t Label = 0; // the paper uses the Airplane class
  auto Victim = makeScaledVictim(Task, Arch::MiniVGG, Scale);
  const Dataset Train = makeSynthesisSet(Task, Label, Scale);
  const Dataset Test = makeTestSet(Task, Scale).filterByClass(Label);

  // Reference: the fixed-prioritization program (zero synthesis queries).
  const auto FixedLogs = runProgramsOverSet(
      std::vector<Program>(Scale.NumClasses, allFalseProgram()), *Victim,
      Test, Scale.EvalQueryCap, Threads);
  const double FixedAvg = toQuerySample(FixedLogs).avgQueries();

  // Synthesis with a full trace, on the island path (DESIGN.md §15): with
  // --synth-islands N > 1 the trace records the elite trajectory, one
  // step per exchange round, and an "accept" means the global best
  // improved. The default exchange cadence is short enough to fire even
  // within the smoke iteration budget.
  SynthesisConfig Config;
  Config.MaxIter = Scale.SynthIters;
  Config.PerImageQueryCap = Scale.SynthQueryCap;
  Config.Seed = 1;
  Config.Threads = Threads;
  Config.Islands =
      static_cast<size_t>(std::max(1LL, Args.getInt("synth-islands", 2)));
  Config.ExchangeInterval =
      static_cast<size_t>(std::max(1LL, Args.getInt("exchange-interval", 2)));
  std::vector<SynthesisStep> Trace;
  synthesizeProgram(*Victim, Train, Config, &Trace);

  Table T({"iteration", "synthesis #queries", "test avg #queries",
           "vs Sketch+False"});
  T.addRow({"(fixed prioritization)", "0", Table::fmt(FixedAvg, 1), "1.00x"});

  // Evaluate each *accepted* program (the paper records accepted
  // intermediates); skip repeats when a proposal was rejected.
  double LastPlotted = -1.0;
  for (const SynthesisStep &Step : Trace) {
    if (!Step.Accepted)
      continue;
    std::vector<Program> PerClass(Scale.NumClasses, Step.Current);
    const auto Logs = runProgramsOverSet(PerClass, *Victim, Test,
                                         Scale.EvalQueryCap, Threads);
    const double Avg = toQuerySample(Logs).avgQueries();
    logInfo() << "fig4: iter " << Step.Iteration << " -> test avgQ=" << Avg;
    T.addRow({std::to_string(Step.Iteration),
              std::to_string(Step.CumulativeQueries), Table::fmt(Avg, 1),
              Table::fmt(FixedAvg > 0 ? Avg / FixedAvg : 0.0, 2) + "x"});
    LastPlotted = Avg;
  }

  T.print(std::cout);
  std::cout << "\nFinal accepted program reaches "
            << Table::fmt(LastPlotted, 1) << " avg queries vs "
            << Table::fmt(FixedAvg, 1)
            << " for the fixed prioritization.\nExpected shape (paper): "
               "most of the improvement lands within the first few\n"
               "iterations (the paper reports ~2.7x after ~6 iterations), "
               "then a flat tail.\n";

  BenchJson BJ("fig4_synthesis_queries", Scale.Name, Args);
  BJ.set("wall_seconds",
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       BenchStart)
             .count());
  BJ.set("fixed_avg_queries", FixedAvg);
  BJ.set("final_avg_queries", LastPlotted);
  BJ.addTelemetryCounters();
  if (!BJ.writeFromArgs(Args))
    return 1;
  telemetry::finalizeTelemetry();
  return 0;
}
