# The live regression gate against the checked-in baselines: runs one
# fast, fully deterministic bench at smoke scale and feeds its artifact to
# `oppsla_bench gate`. The manifest exact-matches the attack-side metrics
# (attack outcomes, synthesis queries — pure functions of the seeds) and
# treats wall-clock metrics as info, so this test is immune to CPU load
# while still catching any behavior drift against the committed anchor.
#
# Inputs: BENCH (bench binary), GATE (oppsla_bench binary), NAME (bench
# name), BASELINES (bench/baselines source dir), WORK_DIR.
file(MAKE_DIRECTORY ${WORK_DIR})
set(OUT_JSON ${WORK_DIR}/BENCH_${NAME}.json)
file(REMOVE ${OUT_JSON})
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env OPPSLA_BENCH_SCALE=smoke
    ${BENCH} --json-out ${OUT_JSON}
  WORKING_DIRECTORY ${WORK_DIR}
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "${NAME} failed with ${RC}: ${OUT}\n${ERR}")
endif()

execute_process(
  COMMAND ${GATE} gate --baselines ${BASELINES} ${OUT_JSON}
  OUTPUT_VARIABLE GOUT
  ERROR_VARIABLE GERR
  RESULT_VARIABLE GRC)
if(NOT GRC EQUAL 0)
  message(FATAL_ERROR
    "gate vs checked-in baselines failed (${GRC}):\n${GOUT}\n${GERR}")
endif()
if(NOT GOUT MATCHES "gate: PASS")
  message(FATAL_ERROR "gate did not report PASS:\n${GOUT}")
endif()
message(STATUS "gate anchor '${NAME}' OK")
