//===- bench/synth_scale.cpp - Island synthesis scaling -----------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Synthesis throughput and determinism of the parallel MH island search
// (DESIGN.md §15): programs/hour as a function of the island count, plus
// the two correctness invariants the gate pins exactly:
//
//   island_determinism  — the programs synthesized with --synth-islands 4
//                         are byte-identical at 4 worker threads and at 1.
//   store_hit_identical — re-running against a warm program store
//                         rehydrates byte-identical programs without
//                         re-searching (synth.store.hits > 0).
//
// Wall-clock metrics (programs_per_hour*) carry wide ratio rules or stay
// info-only: on a loaded or single-core box the speedup is noise, but the
// determinism bits never are.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "eval/ProgramStore.h"
#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <filesystem>
#include <iostream>

using namespace oppsla;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

std::string portfolioText(const std::vector<Program> &Programs) {
  std::string Out;
  for (const Program &P : Programs)
    Out += programToStoreText(P);
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  const ArgParse Args(argc, argv);
  if (!telemetry::configureFromArgs(Args))
    return 1;
  const auto BenchStart = std::chrono::steady_clock::now();
  const BenchScale Scale = BenchScale::fromEnv();
  const size_t Threads = threadCountFromArgs(Args);
  std::cout << "== Island synthesis scaling (scale: " << Scale.Name
            << ", threads: " << Threads << ") ==\n\n";

  const TaskKind Task = TaskKind::CifarLike;
  auto Victim = makeScaledVictim(Task, Arch::MiniVGG, Scale);
  const std::string Stem = victimStem(Task, Arch::MiniVGG, Scale);

  // A bench-private store root, cleared up front so every run of this
  // binary sees the same cold-store world — the store hit/miss counters
  // are exact-gated and must not depend on leftovers from a prior run.
  const std::string StoreRoot = "synth_scale_store";
  std::filesystem::remove_all(StoreRoot);

  // An exchange cadence that actually fires within the scaled iteration
  // budget (smoke runs only 4 MH iterations).
  const size_t Exchange = Scale.SynthIters >= 50 ? 25 : 2;

  auto synthAll = [&](size_t Islands, size_t RunThreads, bool UseStore) {
    SynthesisRunOptions Opts;
    Opts.Threads = RunThreads;
    Opts.Islands = Islands;
    Opts.ExchangeInterval = Exchange;
    Opts.UseStore = UseStore;
    Opts.StoreRoot = StoreRoot;
    return synthesizeClassPrograms(*Victim, Stem, Task, Scale, /*Seed=*/1,
                                   Opts);
  };

  // --- Cold sweep: programs/hour vs island count ---------------------------
  Table T({"islands", "programs", "seconds", "programs/hour"});
  const size_t IslandCounts[] = {1, 2, 4};
  double ColdPph[3] = {0, 0, 0};
  std::vector<Program> ColdFour;
  for (size_t Idx = 0; Idx != 3; ++Idx) {
    const size_t Islands = IslandCounts[Idx];
    const auto T0 = std::chrono::steady_clock::now();
    auto Programs = synthAll(Islands, Threads, /*UseStore=*/true);
    const double Secs = secondsSince(T0);
    ColdPph[Idx] = Secs > 0 ? Programs.size() / Secs * 3600.0 : 0.0;
    if (Islands == 4)
      ColdFour = Programs;
    T.addRow({std::to_string(Islands), std::to_string(Programs.size()),
              Table::fmt(Secs, 3), Table::fmt(ColdPph[Idx], 0)});
  }
  T.print(std::cout);

  // --- Warm rehydration: the store replaces the search ---------------------
  const auto WarmT0 = std::chrono::steady_clock::now();
  const auto Warm = synthAll(4, Threads, /*UseStore=*/true);
  const double WarmSecs = secondsSince(WarmT0);
  const bool WarmIdentical = portfolioText(Warm) == portfolioText(ColdFour);
  std::cout << "\nwarm rehydration: " << Table::fmt(WarmSecs, 3) << " s, "
            << (WarmIdentical ? "byte-identical" : "MISMATCH") << "\n";
  if (!WarmIdentical)
    logWarn() << "warm store rehydration did not reproduce the cold run";

  // --- Thread-count invariance of the island search ------------------------
  // Same (seed, islands, exchange interval) at 4 worker threads and 1;
  // the store is bypassed so both runs genuinely search.
  const auto FourThreads = synthAll(4, /*RunThreads=*/4, /*UseStore=*/false);
  const auto OneThread = synthAll(4, /*RunThreads=*/1, /*UseStore=*/false);
  const bool Deterministic =
      portfolioText(FourThreads) == portfolioText(OneThread);
  std::cout << "island determinism (4 threads vs 1): "
            << (Deterministic ? "byte-identical" : "MISMATCH") << "\n";
  if (!Deterministic)
    logWarn() << "island synthesis diverged across thread counts";

  // --- Throughput sample for the ratio gate --------------------------------
  // Repeat the no-store 4-island synthesis until enough wall time has
  // accumulated that programs/hour is a measurement, not timer noise.
  size_t Produced = 0;
  const auto PphT0 = std::chrono::steady_clock::now();
  double PphSecs = 0.0;
  do {
    Produced += synthAll(4, Threads, /*UseStore=*/false).size();
    PphSecs = secondsSince(PphT0);
  } while (PphSecs < 0.25);
  const double Pph = Produced / PphSecs * 3600.0;
  std::cout << "sustained: " << Produced << " programs in "
            << Table::fmt(PphSecs, 3) << " s = " << Table::fmt(Pph, 0)
            << " programs/hour\n";

  BenchJson BJ("synth_scale", Scale.Name, Args);
  BJ.set("wall_seconds", secondsSince(BenchStart));
  BJ.set("threads", static_cast<double>(Threads));
  BJ.set("programs_per_hour", Pph);
  BJ.set("programs_per_hour_i1", ColdPph[0]);
  BJ.set("programs_per_hour_i2", ColdPph[1]);
  BJ.set("programs_per_hour_i4", ColdPph[2]);
  BJ.set("island_speedup_4x", ColdPph[0] > 0 ? ColdPph[2] / ColdPph[0] : 0.0);
  BJ.set("warm_rehydrate_seconds", WarmSecs);
  BJ.set("island_determinism", Deterministic ? 1.0 : 0.0);
  BJ.set("store_hit_identical", WarmIdentical ? 1.0 : 0.0);
  BJ.addTelemetryCounters();
  if (!BJ.writeFromArgs(Args))
    return 1;
  telemetry::finalizeTelemetry();
  return (Deterministic && WarmIdentical) ? 0 : 1;
}
