//===- bench/batch_throughput.cpp - Query engine throughput ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what the query engine buys on raw forward throughput: images/sec
// and physical forwards for batch 1 vs batch N, cache off vs cache on, and
// (when the host has the cores for it) the engine's worker-clone parallel
// path. Emits BENCH_queryengine.json for the driver to diff; the headline
// acceptance number is images/sec at batch >= 8 relative to the serial
// batch-1 loop on the same model.
//
//===----------------------------------------------------------------------===//

#include "classify/NNClassifier.h"
#include "engine/QueryEngine.h"
#include "nn/ModelZoo.h"
#include "tensor/Gemm.h"
#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/BenchScale.h"
#include "support/Metrics.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

using namespace oppsla;

namespace {

struct RunSpec {
  size_t BatchSize;
  size_t CacheCapacity;
  size_t Threads;
  size_t Passes; // how many times the image set is queried
};

struct RunResult {
  std::string Model;
  RunSpec Spec;
  size_t Images = 0;
  uint64_t LogicalQueries = 0;
  uint64_t PhysicalForwards = 0;
  double Seconds = 0.0;
  double ImagesPerSec = 0.0;
  double SpeedupVsBatch1 = 0.0;
  double CacheHitRate = 0.0;
};

std::vector<Image> makeImages(size_t N, size_t Side) {
  Rng R(0x1337);
  std::vector<Image> Out;
  Out.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    Image Img(Side, Side);
    for (float &V : Img.raw())
      V = R.uniformF();
    Out.push_back(std::move(Img));
  }
  return Out;
}

RunResult runOne(const std::string &Model, NNClassifier &Inner,
                 const std::vector<Image> &Imgs, const RunSpec &Spec) {
  QueryEngineConfig Config;
  Config.BatchSize = Spec.BatchSize;
  Config.CacheCapacity = Spec.CacheCapacity;
  Config.Threads = Spec.Threads;
  QueryEngine Engine(Inner, Config);

  const auto Start = std::chrono::steady_clock::now();
  for (size_t Pass = 0; Pass != Spec.Passes; ++Pass) {
    if (Spec.BatchSize <= 1) {
      // The pre-engine serial path: one logical query, one forward, each.
      for (const Image &Img : Imgs) {
        const std::vector<float> S = Engine.scores(Img);
        if (S.empty())
          std::abort();
      }
    } else {
      const auto Out = Engine.scoresBatch(std::span<const Image>(Imgs));
      if (Out.size() != Imgs.size())
        std::abort();
    }
  }
  const auto End = std::chrono::steady_clock::now();

  RunResult R;
  R.Model = Model;
  R.Spec = Spec;
  R.Images = Imgs.size() * Spec.Passes;
  R.LogicalQueries = Engine.logicalQueries();
  R.PhysicalForwards = Engine.physicalForwards();
  R.Seconds = std::chrono::duration<double>(End - Start).count();
  R.ImagesPerSec = R.Seconds > 0 ? static_cast<double>(R.Images) / R.Seconds : 0;
  const uint64_t Probes = Engine.cache().hits() + Engine.cache().misses();
  R.CacheHitRate =
      Probes ? static_cast<double>(Engine.cache().hits()) / Probes : 0.0;
  return R;
}

void appendJson(std::string &Out, const RunResult &R) {
  std::ostringstream S;
  S << "    {\"model\": \"" << R.Model << "\", \"batch_size\": "
    << R.Spec.BatchSize << ", \"cache_capacity\": " << R.Spec.CacheCapacity
    << ", \"engine_threads\": " << R.Spec.Threads
    << ", \"passes\": " << R.Spec.Passes << ", \"images\": " << R.Images
    << ", \"logical_queries\": " << R.LogicalQueries
    << ", \"physical_forwards\": " << R.PhysicalForwards
    << ", \"seconds\": " << R.Seconds
    << ", \"images_per_sec\": " << R.ImagesPerSec
    << ", \"speedup_vs_batch1\": " << R.SpeedupVsBatch1
    << ", \"cache_hit_rate\": " << R.CacheHitRate << "}";
  Out += S.str();
}

} // namespace

int main(int argc, char **argv) {
  const ArgParse Args(argc, argv);
  if (!telemetry::configureFromArgs(Args))
    return 1;
  const BenchScale Scale = BenchScale::fromEnv();
  const std::string OutPath = Args.get("out", "BENCH_queryengine.json");
  const size_t HwThreads = ThreadPool::hardwareThreads();

  // Throughput does not need trained weights; random initialization runs
  // the exact same arithmetic.
  const size_t NumImages = Scale.Name == "smoke"   ? 24
                           : Scale.Name == "paper" ? 256
                                                   : 96;
  const size_t Side = Scale.CifarSide;
  const struct {
    Arch A;
    const char *Name;
  } Models[] = {{Arch::MiniVGG, "MiniVGG"}, {Arch::MiniResNet, "MiniResNet"}};

  std::cout << "== Query engine batch throughput (scale: " << Scale.Name
            << ", side " << Side << ", " << NumImages << " images, "
            << HwThreads << " hw threads) ==\n\n";

  std::vector<RunResult> Results;
  for (const auto &M : Models) {
    Rng R(7);
    NNClassifier Inner(buildModel(M.A, 10, Side, R), 10, M.Name);
    const std::vector<Image> Imgs = makeImages(NumImages, Side);

    std::vector<RunSpec> Specs = {
        {/*BatchSize=*/1, /*CacheCapacity=*/0, /*Threads=*/1, /*Passes=*/1},
        {/*BatchSize=*/8, /*CacheCapacity=*/0, /*Threads=*/1, /*Passes=*/1},
        {/*BatchSize=*/32, /*CacheCapacity=*/0, /*Threads=*/1, /*Passes=*/1},
        // Cache on, two passes: the second pass is pure hits, the shape an
        // attack's repeated-proposal traffic takes.
        {/*BatchSize=*/8, /*CacheCapacity=*/4096, /*Threads=*/1, /*Passes=*/2},
    };
    if (HwThreads > 1)
      Specs.push_back({/*BatchSize=*/8, /*CacheCapacity=*/0, HwThreads, 1});

    double Batch1Rate = 0.0;
    for (const RunSpec &Spec : Specs) {
      RunResult Res = runOne(M.Name, Inner, Imgs, Spec);
      if (Spec.BatchSize == 1)
        Batch1Rate = Res.ImagesPerSec;
      Res.SpeedupVsBatch1 =
          Batch1Rate > 0 ? Res.ImagesPerSec / Batch1Rate : 0.0;
      Results.push_back(Res);
    }
  }

  // Kernel comparison: the same batch-32 cache-off forward through the
  // packed/fused SGEMM vs --naive-kernels (the pre-kernel scalar loops),
  // per model. This is the acceptance headline for kernel changes.
  struct KernelRow {
    std::string Model;
    double FastRate = 0.0, NaiveRate = 0.0, Speedup = 0.0;
  };
  std::vector<KernelRow> Kernels;
  for (const auto &M : Models) {
    Rng R(7);
    NNClassifier Inner(buildModel(M.A, 10, Side, R), 10, M.Name);
    const std::vector<Image> Imgs = makeImages(NumImages, Side);
    const RunSpec Spec{/*BatchSize=*/32, /*CacheCapacity=*/0, /*Threads=*/1,
                       /*Passes=*/2};
    KernelRow Row;
    Row.Model = M.Name;
    // Untimed warm-up per kernel so one-time costs (scratch allocation,
    // page faults, the fusion plan) don't bias whichever runs first.
    runOne(M.Name, Inner, Imgs, Spec);
    Row.FastRate = runOne(M.Name, Inner, Imgs, Spec).ImagesPerSec;
    kernels::setNaive(true);
    runOne(M.Name, Inner, Imgs, Spec);
    Row.NaiveRate = runOne(M.Name, Inner, Imgs, Spec).ImagesPerSec;
    kernels::setNaive(false);
    Row.Speedup = Row.NaiveRate > 0 ? Row.FastRate / Row.NaiveRate : 0.0;
    Kernels.push_back(Row);
  }

  Table T({"model", "batch", "cache", "threads", "images", "forwards",
           "images/sec", "vs batch 1"});
  for (const RunResult &R : Results)
    T.addRow({R.Model, std::to_string(R.Spec.BatchSize),
              R.Spec.CacheCapacity ? "on" : "off",
              std::to_string(R.Spec.Threads), std::to_string(R.Images),
              std::to_string(R.PhysicalForwards), Table::fmt(R.ImagesPerSec, 1),
              Table::fmt(R.SpeedupVsBatch1, 2) + "x"});
  T.print(std::cout);

  std::cout << "\n";
  Table KT({"model", "fast images/sec", "naive images/sec", "kernel speedup"});
  for (const KernelRow &K : Kernels)
    KT.addRow({K.Model, Table::fmt(K.FastRate, 1), Table::fmt(K.NaiveRate, 1),
               Table::fmt(K.Speedup, 2) + "x"});
  KT.print(std::cout);

  std::string Json = "{\n  \"bench\": \"queryengine_batch_throughput\",\n";
  Json += "  \"scale\": \"" + Scale.Name + "\",\n";
  Json += "  \"hardware_threads\": " + std::to_string(HwThreads) + ",\n";
  Json += "  \"results\": [\n";
  for (size_t I = 0; I != Results.size(); ++I) {
    appendJson(Json, Results[I]);
    Json += I + 1 == Results.size() ? "\n" : ",\n";
  }
  Json += "  ]\n}\n";

  std::ofstream Out(OutPath);
  if (!Out) {
    std::cerr << "error: cannot write " << OutPath << "\n";
    return 1;
  }
  Out << Json;
  std::cout << "\nwrote " << OutPath << "\n";

  // The standard flat artifact alongside the detailed per-spec one above.
  BenchJson BJ("batch_throughput", Scale.Name, Args);
  double BestSpeedup = 0.0, BestRate = 0.0, TotalSeconds = 0.0;
  for (const RunResult &R : Results) {
    BestSpeedup = std::max(BestSpeedup, R.SpeedupVsBatch1);
    BestRate = std::max(BestRate, R.ImagesPerSec);
    TotalSeconds += R.Seconds;
  }
  BJ.set("wall_seconds", TotalSeconds);
  BJ.set("best_speedup_vs_batch1", BestSpeedup);
  BJ.set("best_images_per_sec", BestRate);
  BJ.set("runs", static_cast<double>(Results.size()));
  double ForwardRate = 0.0, NaiveRate = 0.0, KernelSpeedup = 0.0;
  for (const KernelRow &K : Kernels) {
    ForwardRate = std::max(ForwardRate, K.FastRate);
    NaiveRate = std::max(NaiveRate, K.NaiveRate);
    KernelSpeedup = std::max(KernelSpeedup, K.Speedup);
  }
  BJ.set("forward_images_per_sec", ForwardRate);
  BJ.set("naive_images_per_sec", NaiveRate);
  BJ.set("kernel_speedup_vs_naive", KernelSpeedup);
  // Fold the engine's process-wide efficiency counters into the artifact
  // so every ledger row of this bench carries hit rate and batching next
  // to the throughput headline.
  for (const auto &[Key, Value] : engineLedgerMetrics())
    BJ.set(Key, Value);
  if (!BJ.writeFromArgs(Args))
    return 1;
  telemetry::finalizeTelemetry();
  return 0;
}
