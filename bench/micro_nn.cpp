//===- bench/micro_nn.cpp - Microbenchmarks for the CNN substrate -------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the inference path that dominates
// every experiment: one black-box query = one batch-1 forward pass. Also
// measures the GEMM/im2col primitives and training steps.
//
//===----------------------------------------------------------------------===//

#include "classify/NNClassifier.h"
#include "nn/Loss.h"
#include "nn/ModelZoo.h"
#include "nn/Optimizer.h"
#include "support/ArgParse.h"
#include "support/BenchJson.h"
#include "support/BenchScale.h"
#include "support/Metrics.h"
#include "support/Rng.h"
#include "tensor/TensorOps.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

using namespace oppsla;

namespace {

void BM_Matmul(benchmark::State &State) {
  const auto N = static_cast<size_t>(State.range(0));
  Rng R(1);
  const Tensor A = Tensor::randn({N, N}, R);
  const Tensor B = Tensor::randn({N, N}, R);
  Tensor C({N, N});
  for (auto _ : State) {
    matmul(A, B, C);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(2 * N * N * N));
}
BENCHMARK(BM_Matmul)->Arg(16)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State &State) {
  Rng R(2);
  const Tensor In = Tensor::randn({1, 8, 32, 32}, R);
  Tensor Cols({8 * 9, 32 * 32});
  for (auto _ : State) {
    im2col(In, 3, 3, 1, 1, Cols);
    benchmark::DoNotOptimize(Cols.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_ForwardQuery(benchmark::State &State) {
  const Arch A = static_cast<Arch>(State.range(0));
  const auto Side = static_cast<size_t>(State.range(1));
  Rng R(3);
  auto Net = buildModel(A, 10, Side, R);
  NNClassifier C(std::move(Net), 10, archName(A));
  Rng IR(4);
  Image Img(Side, Side);
  for (float &V : Img.raw())
    V = IR.uniformF();
  for (auto _ : State) {
    const std::vector<float> S = C.scores(Img);
    benchmark::DoNotOptimize(S.data());
  }
  State.SetLabel(std::string(archName(A)) + "@" + std::to_string(Side));
}
BENCHMARK(BM_ForwardQuery)
    ->Args({static_cast<long>(Arch::MiniVGG), 32})
    ->Args({static_cast<long>(Arch::MiniResNet), 32})
    ->Args({static_cast<long>(Arch::MiniGoogLeNet), 32})
    ->Args({static_cast<long>(Arch::MiniDenseNet), 32})
    ->Args({static_cast<long>(Arch::MiniDenseNet), 40})
    ->Args({static_cast<long>(Arch::MiniResNet50), 40});

void BM_TrainStep(benchmark::State &State) {
  Rng R(5);
  auto Net = buildModel(Arch::MiniVGG, 10, 32, R);
  Sgd Opt(Net->parameters(), 0.05f);
  CrossEntropy Loss;
  Rng DR(6);
  const Tensor Batch = Tensor::rand({16, 3, 32, 32}, DR);
  std::vector<size_t> Labels(16);
  for (size_t I = 0; I != 16; ++I)
    Labels[I] = I % 10;
  for (auto _ : State) {
    Opt.zeroGrad();
    Tensor Logits = Net->forward(Batch, /*Train=*/true);
    Loss.forward(Logits, Labels);
    Net->backward(Loss.backward());
    Opt.step();
    benchmark::DoNotOptimize(Logits.data());
  }
}
BENCHMARK(BM_TrainStep);

/// Console reporter that additionally captures each benchmark's adjusted
/// real time (in its display time unit, ns by default) so main() can fold
/// the results into the standard BENCH_<name>.json artifact.
class CaptureReporter : public benchmark::ConsoleReporter {
public:
  std::map<std::string, double> Times;

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      if (!R.error_occurred && !R.report_big_o && !R.report_rms)
        Times[R.benchmark_name()] = R.GetAdjustedRealTime();
    ConsoleReporter::ReportRuns(Runs);
  }
};

} // namespace

// Custom main instead of BENCHMARK_MAIN(): strips the telemetry flags
// (--layer-timing / --metrics-out / --trace-out / --json-out / profiler
// flags) before handing argv to google-benchmark, and prints the per-layer
// forward time breakdown collected under --layer-timing after the
// benchmarks ran.
int main(int argc, char **argv) {
  const ArgParse Args(argc, argv);
  if (!oppsla::telemetry::configureFromArgs(Args))
    return 1;

  std::vector<char *> BenchArgv;
  for (int I = 0; I != argc; ++I) {
    const char *A = argv[I];
    // "--profile" also matches "--profile-out", "--stats-port" also
    // matches "--stats-port-file"; all of them are ours, not benchmark's.
    const bool Telemetry = std::strncmp(A, "--layer-timing", 14) == 0 ||
                           std::strncmp(A, "--metrics-out", 13) == 0 ||
                           std::strncmp(A, "--trace-out", 11) == 0 ||
                           std::strncmp(A, "--json-out", 10) == 0 ||
                           std::strncmp(A, "--profile", 9) == 0 ||
                           std::strncmp(A, "--progress", 10) == 0 ||
                           std::strncmp(A, "--stats-port", 12) == 0 ||
                           std::strncmp(A, "--stats-linger", 14) == 0 ||
                           std::strncmp(A, "--repeat", 8) == 0 ||
                           std::strncmp(A, "--hw-counters", 13) == 0 ||
                           std::strncmp(A, "--ledger", 8) == 0;
    if (Telemetry) {
      // Skip a separate `--flag value` operand as ArgParse would.
      if (std::strchr(A, '=') == nullptr && I + 1 < argc &&
          std::strncmp(argv[I + 1], "--", 2) != 0)
        ++I;
      continue;
    }
    BenchArgv.push_back(argv[I]);
  }
  int BenchArgc = static_cast<int>(BenchArgv.size());
  benchmark::Initialize(&BenchArgc, BenchArgv.data());
  CaptureReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  const std::string LayerReport = oppsla::telemetry::layerTimingReport();
  if (!LayerReport.empty())
    std::cout << "\n" << LayerReport;

  BenchJson BJ("micro_nn", BenchScale::fromEnv().Name, Args);
  for (const auto &[Name, RealTime] : Reporter.Times)
    BJ.set(Name + "_ns", RealTime);
  if (!BJ.writeFromArgs(Args))
    return 1;
  oppsla::telemetry::finalizeTelemetry();
  return 0;
}
